"""Perf — cross-session result cache + batched serving throughput.

Models a concurrent serving workload: many independent sessions finalize
against the same structure, and their interest is Zipfian — a few hot
queries (popular semantic regions) dominate the stream.  The bench
measures aggregate final-round throughput three ways:

* **uncached serial** — every session recomputes its subqueries
  (the pre-cache baseline),
* **cache-warm steady state** — the :class:`repro.cache.
  SubqueryResultCache` is attached and already hot, so repeated
  subqueries skip boundary expansion and block scans,
* **coalesced batch** — the same stream served through
  ``run_final_round_batch`` with a cold cache, where duplicate
  subqueries share one scan per group.

Runs two ways:

* ``pytest benchmarks/bench_cache_throughput.py`` — report/benchmark
  fixtures, rows appended to ``benchmarks/results/latest.txt``.
* ``python benchmarks/bench_cache_throughput.py [--tiny]`` —
  fixture-free script entry for CI smoke (same rows, same results file).

``QD_BENCH_TINY=1`` (or ``--tiny``) shrinks the workload for CI.

Acceptance (ISSUE): >= 2x aggregate QPS at cache-warm steady state on
the Zipfian workload at full scale (the tiny smoke asserts a relaxed
>= 1.2x), with every cached and batched ranking bit-identical to the
serial uncached path.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _harness import TINY_ENV, emit, tiny_arg_parser
from repro.cache import SubqueryResultCache
from repro.obs.bench import BenchResult
from repro.config import QDConfig, RFSConfig
from repro.core.ranking import execute_final_round
from repro.datasets.build import build_synthetic_database
from repro.exec import BatchQuery, run_final_round_batch
from repro.index.rfs import RFSStructure

TINY = os.environ.get("QD_BENCH_TINY") == "1"
SEED = 2006
MARKS_PER_QUERY = 6
ZIPF_EXPONENT = 1.1
CACHE_BYTES = 64 << 20


def _params(tiny: bool) -> dict:
    """Workload shape: a hot-skewed stream over a fixed query pool."""
    if tiny:
        return dict(n_images=2_000, n_categories=30, pool=10, stream=40,
                    k=60, repeats=3, min_speedup=1.2)
    return dict(n_images=15_000, n_categories=150, pool=40, stream=200,
                k=60, repeats=3, min_speedup=2.0)


def _build_workload(p: dict):
    """The structure plus a Zipf-ranked stream of final-round queries."""
    database = build_synthetic_database(
        p["n_images"], n_categories=p["n_categories"], seed=SEED
    )
    rfs = RFSStructure.build(database.features, RFSConfig(), seed=SEED)
    rng = np.random.default_rng(SEED)
    categories = rng.choice(
        p["n_categories"], size=p["pool"], replace=False
    )
    pool = []
    for cat in categories:
        members = np.flatnonzero(database.labels == cat)
        pool.append(
            tuple(int(i) for i in members[:MARKS_PER_QUERY])
        )
    ranks = np.arange(1, p["pool"] + 1, dtype=np.float64)
    probs = ranks**-ZIPF_EXPONENT
    probs /= probs.sum()
    stream = [
        pool[i]
        for i in rng.choice(p["pool"], size=p["stream"], p=probs)
    ]
    return rfs, stream


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _run_stream(rfs, stream, k) -> list:
    return [
        execute_final_round(rfs, marks, k, QDConfig(), rounds_used=3)
        for marks in stream
    ]


def _time_stream(rfs, stream, k, repeats) -> tuple[float, list]:
    """Best-of-``repeats`` wall time of serving the whole stream."""
    best = float("inf")
    results = None
    for _ in range(repeats):
        start = time.perf_counter()
        results = _run_stream(rfs, stream, k)
        best = min(best, time.perf_counter() - start)
    return best, results


def run_cache_bench(tiny: bool) -> tuple[list[str], dict]:
    """Run every measurement; returns (report rows, metrics dict)."""
    p = _params(tiny)
    rfs, stream = _build_workload(p)
    n = len(stream)

    # Baseline: every session recomputes (no cache attached).
    uncached_s, baseline = _time_stream(rfs, stream, p["k"], p["repeats"])
    baseline_sigs = [_signature(r) for r in baseline]

    # Cache-warm steady state: attach, warm once, then time the stream.
    cache = SubqueryResultCache(CACHE_BYTES)
    rfs.attach_cache(cache)
    _run_stream(rfs, stream, p["k"])  # warm-up pass
    before = cache.snapshot()
    warm_s, warm_results = _time_stream(rfs, stream, p["k"], p["repeats"])
    after = cache.snapshot()
    assert [_signature(r) for r in warm_results] == baseline_sigs
    lookups = (after["hits"] + after["misses"]) - (
        before["hits"] + before["misses"]
    )
    hit_rate = (after["hits"] - before["hits"]) / max(1, lookups)

    # Coalesced batch with a cold cache: duplicate subqueries share one
    # block scan per group even before any entry is warm.
    rfs.attach_cache(SubqueryResultCache(CACHE_BYTES))
    queries = [
        BatchQuery(marked_ids=marks, k=p["k"]) for marks in stream
    ]
    start = time.perf_counter()
    batch_results = run_final_round_batch(
        rfs, queries, QDConfig(), rounds_used=3
    )
    batch_s = time.perf_counter() - start
    assert [_signature(r) for r in batch_results] == baseline_sigs
    rfs.detach_cache()

    warm_speedup = uncached_s / warm_s
    batch_speedup = uncached_s / batch_s
    scale = "tiny" if tiny else "full"
    rows = [
        f"Result cache: Zipfian stream of {n} final rounds over "
        f"{p['pool']} distinct queries, {p['n_images']} images, "
        f"k={p['k']} ({scale})",
        f"  uncached serial      {uncached_s * 1000:8.1f} ms   "
        f"{n / uncached_s:7.1f} qps   1.00x",
        f"  cache-warm serial    {warm_s * 1000:8.1f} ms   "
        f"{n / warm_s:7.1f} qps   {warm_speedup:.2f}x   "
        f"(hit rate {hit_rate:.0%})",
        f"  batch, cold cache    {batch_s * 1000:8.1f} ms   "
        f"{n / batch_s:7.1f} qps   {batch_speedup:.2f}x   "
        "(coalesced scans)",
    ]
    metrics = {
        "warm_speedup": warm_speedup,
        "batch_speedup": batch_speedup,
        "hit_rate": hit_rate,
        "uncached_s": uncached_s,
        "warm_s": warm_s,
        "batch_s": batch_s,
        "min_speedup": p["min_speedup"],
    }
    return rows, metrics


def _bench_result(tiny: bool, metrics: dict) -> BenchResult:
    """The canonical ``BENCH_cache_throughput.json`` record."""
    p = _params(tiny)
    result = BenchResult.new("cache_throughput", {**p, "tiny": tiny})
    result.record(
        "warm_speedup", metrics["warm_speedup"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "batch_speedup", metrics["batch_speedup"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "hit_rate", metrics["hit_rate"], unit="ratio",
        higher_is_better=True, min_abs=0.02,
    )
    for name in ("uncached_s", "warm_s", "batch_s"):
        result.record(
            name, metrics[name], unit="s", higher_is_better=False,
            compare=False,
        )
    return result


def _check(metrics: dict) -> None:
    # Acceptance: warm steady state beats the uncached path.
    assert metrics["warm_speedup"] >= metrics["min_speedup"]
    # Every repeated subquery of the steady-state stream must hit.
    assert metrics["hit_rate"] >= 0.9
    # Coalescing never loses badly to serial even with a cold cache
    # (identical queries share their groups' block scans).
    assert metrics["batch_speedup"] >= 0.8


def test_cache_throughput(report, benchmark):
    rows, metrics = run_cache_bench(TINY)
    report("\n".join(rows))
    _bench_result(TINY, metrics).write(
        os.path.join(os.path.dirname(__file__), "results")
    )
    benchmark.extra_info["warm_speedup"] = round(
        metrics["warm_speedup"], 2
    )
    benchmark.extra_info["hit_rate"] = round(metrics["hit_rate"], 3)
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timing captured manually above; keep the bench in the report
    _check(metrics)


def main(argv=None) -> int:
    parser = tiny_arg_parser(
        "Result-cache throughput benchmark (fixture-free entry)"
    )
    args = parser.parse_args(argv)
    tiny = args.tiny or TINY_ENV
    rows, metrics = run_cache_bench(tiny)
    emit(rows, _bench_result(tiny, metrics))
    _check(metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
