"""Ablation — hierarchy builder: R*-tree bulk load vs hierarchical k-means.

§3.1 chooses the R*-tree "without loss of generality" and notes other
hierarchical clustering techniques would serve.  This ablation builds the
RFS structure both ways over the paper-scale database and compares tree
shape and end-to-end retrieval quality on a query subset.
"""

import numpy as np

from repro.config import RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.queryset import get_query
from repro.eval.protocol import run_qd_session
from repro.eval.reporting import format_table
from repro.index.rfs import RFSStructure

QUERIES = ("person", "bird", "computer", "rose")


def test_ablation_hierarchy_builder(benchmark, paper_db, report):
    def measure():
        rows = []
        for method in ("rstar", "hkmeans"):
            rfs = RFSStructure.build(
                paper_db.features, RFSConfig(), seed=2006, method=method
            )
            engine = QueryDecompositionEngine(paper_db, rfs)
            n_leaves = sum(1 for n in rfs.iter_nodes() if n.is_leaf)
            precisions, gtirs = [], []
            for name in QUERIES:
                result, _ = run_qd_session(
                    engine, get_query(name), seed=51
                )
                precisions.append(result.stats["precision"])
                gtirs.append(result.stats["gtir"])
            rows.append(
                (
                    method,
                    rfs.height,
                    n_leaves,
                    rfs.representative_fraction(),
                    float(np.mean(precisions)),
                    float(np.mean(gtirs)),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        format_table(
            ["hierarchy", "levels", "leaves", "rep fraction",
             "precision", "GTIR"],
            rows,
            title=(
                "Ablation: hierarchy builder "
                "(paper: R*-tree, §3.1 notes alternatives)"
            ),
        )
    )
    benchmark.extra_info["rows"] = rows
    by_method = {r[0]: r for r in rows}
    # Both hierarchies support the QD model (§3.1's claim of
    # generality): quality within a reasonable band of each other.
    assert by_method["rstar"][5] > 0.8
    assert by_method["hkmeans"][5] > 0.6
