"""Figure 1 — PCA scattering of the four "white sedan" pose clusters.

The paper projects the 37-d features of white-sedan images onto a 3-d
PCA subspace and observes four distinct pose clusters (side / front /
back / angle view) with irrelevant images scattered between them.  This
bench regenerates the measurable content of that scatter plot: cluster
separation statistics, the pose-locality of k-NN neighbourhoods, and the
poor precision of a neighbourhood enlarged to span all four poses.
"""

from repro.eval.experiments import run_figure1


def test_fig1_pca_clusters(benchmark, paper_db, report):
    result = benchmark.pedantic(
        lambda: run_figure1(paper_db), rounds=1, iterations=1
    )
    report(result.format())
    benchmark.extra_info["silhouette"] = round(result.silhouette, 3)
    benchmark.extra_info["knn_pose_purity"] = round(
        result.knn_pose_purity, 3
    )
    benchmark.extra_info["spanning_precision"] = round(
        result.knn_all_pose_precision, 3
    )

    # Paper shape: four *distinct* clusters ...
    assert result.silhouette > 0.3
    assert result.separation_ratio > 1.0
    # ... k-NN neighbourhoods are confined to a single pose ...
    assert result.knn_pose_purity > 0.8
    # ... and covering all four poses with one neighbourhood admits many
    # irrelevant images (the scattered triangles of Figure 1).
    assert result.knn_all_pose_precision < 0.5
