"""Shared emission harness for the perf benchmark entry points.

Every ``benchmarks/bench_*.py`` perf entry point reports through here,
in two formats at once:

* the human-readable rows appended to ``benchmarks/results/latest.txt``
  (unchanged legacy format, kept as a secondary artifact), and
* a schema-validated ``BENCH_<name>.json``
  (:class:`repro.obs.bench.BenchResult`) carrying the git sha, machine
  fingerprint, workload params, and each metric as a series with
  p50/p95 — the canonical record that ``scripts/bench_compare.py``
  diffs against the committed baselines in ``benchmarks/baselines/``.

Works identically from the pytest entry points and the fixture-free
``python benchmarks/bench_<name>.py`` scripts (both put this directory
on ``sys.path``).
"""

from __future__ import annotations

import argparse
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.obs.bench import BenchResult

RESULTS_DIR = Path(__file__).parent / "results"
TINY_ENV = os.environ.get("QD_BENCH_TINY") == "1"


def tiny_arg_parser(description: str) -> argparse.ArgumentParser:
    """The shared ``--tiny`` CLI every fixture-free entry point uses."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--tiny",
        action="store_true",
        help="CI smoke scale (also via QD_BENCH_TINY=1)",
    )
    return parser


def emit(
    rows: List[str],
    result: Optional[BenchResult] = None,
    results_dir: Union[str, Path, None] = None,
) -> None:
    """Print ``rows``, append them to ``latest.txt``, write the JSON.

    ``result.write`` validates against the bench schema, so a malformed
    record fails the run instead of silently uploading garbage.
    """
    directory = Path(results_dir) if results_dir else RESULTS_DIR
    directory.mkdir(exist_ok=True)
    text = "\n".join(rows)
    print(text)
    with (directory / "latest.txt").open("a") as handle:
        handle.write(text + "\n\n")
    if result is not None:
        result.write(directory)
