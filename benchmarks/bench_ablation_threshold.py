"""Ablation — the boundary-expansion threshold (§3.3).

The paper tests whether a local query image sits near its leaf boundary
by comparing distance-to-centre / leaf-diagonal against a threshold,
expanding the search to the parent when exceeded; for the 15,000-image
database they pick 0.4.  This ablation sweeps the threshold and reports
result precision and the pages the localized k-NNs read: a low threshold
expands (almost) always — more I/O for little quality — while a high
threshold never expands and can clip boundary queries.
"""

import numpy as np

from repro.config import QDConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.queryset import get_query
from repro.eval.protocol import run_qd_session
from repro.eval.reporting import format_table

THRESHOLDS = (0.0, 0.2, 0.4, 0.6, 1.0)
QUERIES = ("bird", "computer", "rose", "horse")


def test_ablation_boundary_threshold(benchmark, paper_db, report):
    def measure():
        # One RFS build shared across thresholds — the threshold only
        # affects query processing, not the structure.
        rfs = _shared_rfs(paper_db)
        rows = []
        for threshold in THRESHOLDS:
            engine = QueryDecompositionEngine(
                database=paper_db,
                rfs=rfs,
                config=QDConfig(boundary_threshold=threshold),
            )
            precisions, reads = [], []
            for name in QUERIES:
                engine.io.reset()
                result, _ = run_qd_session(
                    engine, get_query(name), seed=21
                )
                precisions.append(result.stats["precision"])
                reads.append(
                    engine.io.per_category.get("localized_knn", 0)
                )
            rows.append(
                (
                    threshold,
                    float(np.mean(precisions)),
                    float(np.mean(reads)),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        format_table(
            ["threshold", "precision", "localized k-NN page reads"],
            rows,
            title="Ablation: boundary-expansion threshold (paper: 0.4)",
        )
    )
    by_threshold = {t: (p, r) for t, p, r in rows}
    benchmark.extra_info["rows"] = rows

    # Expanding always (threshold 0) reads the most pages.
    assert by_threshold[0.0][1] >= by_threshold[1.0][1]
    # The paper's 0.4 keeps precision within reach of the
    # expand-always setting at a fraction of its I/O.
    assert by_threshold[0.4][0] >= by_threshold[0.0][0] - 0.1


_RFS_CACHE = {}


def _shared_rfs(database):
    key = id(database)
    if key not in _RFS_CACHE:
        engine = QueryDecompositionEngine.build(database, seed=2006)
        _RFS_CACHE[key] = engine.rfs
    return _RFS_CACHE[key]
