"""Figure 11 — average per-iteration feedback time vs database size.

The paper reports the average processing time of a single relevance
feedback round, again linear in database size and — the point of the RFS
structure — far cheaper than the global k-NN computation a traditional
relevance-feedback technique executes every round (§1.2, §5.2.2).  The
sweep is shared with the Figure 10 bench via the session-scoped
``scalability_result`` fixture.
"""

from repro.eval.experiments import run_scalability


def test_fig11_iteration_time(benchmark, scalability_result, report):
    result = scalability_result
    benchmark.pedantic(
        lambda: run_scalability((2_000,), n_queries=10, seed=8),
        rounds=1,
        iterations=1,
    )
    report(result.format_figure11())
    benchmark.extra_info["iteration_times"] = [
        round(p.iteration_time, 6) for p in result.points
    ]
    benchmark.extra_info["iteration_times_p95"] = [
        round(p.iteration_time_p95, 6) for p in result.points
    ]
    benchmark.extra_info["global_knn_times"] = [
        round(p.global_knn_round_time, 6) for p in result.points
    ]

    # Paper shape: RFS feedback rounds are much cheaper than a global
    # k-NN round at every database size, and the gap persists as the
    # database grows.
    for point in result.points:
        assert point.iteration_time < point.global_knn_round_time
    first, last = result.points[0], result.points[-1]
    ratio_first = first.global_knn_round_time / max(
        first.iteration_time, 1e-9
    )
    ratio_last = last.global_knn_round_time / max(
        last.iteration_time, 1e-9
    )
    assert ratio_last >= ratio_first * 0.5  # the advantage persists
