"""Shared benchmark environment.

The quality benchmarks (Tables 1–2, Figures 1, 4–9) run at the paper's
scale — 15,000 images, 150 categories — so the confinement effects the
paper reports actually manifest.  The rendered database is cached on disk
after the first build (~30 s) and reloaded on later runs.

Every bench prints the regenerated table/figure rows to stdout (run with
``-s`` to see them live) and appends them to
``benchmarks/results/latest.txt``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import obs
from repro.config import DatasetConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import build_rendered_database
from repro.datasets.database import ImageDatabase

CACHE_DIR = Path(__file__).parent / ".cache"
RESULTS_DIR = Path(__file__).parent / "results"
PAPER_SEED = 2006


def _load_or_build_paper_db() -> ImageDatabase:
    CACHE_DIR.mkdir(exist_ok=True)
    cache = CACHE_DIR / f"paper_db_{PAPER_SEED}.npz"
    if cache.exists():
        return ImageDatabase.load(cache)
    database = build_rendered_database(
        DatasetConfig(seed=PAPER_SEED)  # 15,000 images / 150 categories
    )
    database.save(cache)
    return database


@pytest.fixture(scope="session")
def paper_db() -> ImageDatabase:
    """The paper-scale rendered database (15k images, 150 categories)."""
    return _load_or_build_paper_db()


@pytest.fixture(scope="session")
def paper_engine(paper_db) -> QueryDecompositionEngine:
    """QD engine with the paper's RFS configuration (100/70 nodes)."""
    return QueryDecompositionEngine.build(paper_db, seed=PAPER_SEED)


#: Database sizes of the Figure 10/11 sweeps (the paper sweeps up to its
#: 15,000-image database).  ``QD_SCALABILITY_MAX`` extends the ladder
#: past the paper's scale — e.g. ``QD_SCALABILITY_MAX=100000`` adds the
#: 30k/60k/100k points (the Gaussian-mixture backend builds them
#: directly in feature space, so even 1M-item sweeps stay tractable).
#: The weekly bench-full CI job sets it; default runs stay paper-sized.
_EXTENDED_SIZES = (30_000, 60_000, 100_000, 250_000, 500_000, 1_000_000)


def _scalability_sizes() -> tuple:
    import os

    base = (2_000, 4_000, 8_000, 12_000, 15_000)
    cap = int(os.environ.get("QD_SCALABILITY_MAX", "0") or "0")
    if cap <= base[-1]:
        return base
    return base + tuple(s for s in _EXTENDED_SIZES if s <= cap)


SCALABILITY_SIZES = _scalability_sizes()

_SCALABILITY_CACHE = {}


@pytest.fixture(scope="session")
def scalability_result(obs_registry):
    """One shared Figure 10/11 sweep (both figures read the same runs).

    Phase timings (including the p95 columns) come from per-session
    traces — see ``repro.obs.phase_durations`` — not TimingLog plumbing.
    """
    from repro.eval.experiments import run_scalability

    if "result" not in _SCALABILITY_CACHE:
        _SCALABILITY_CACHE["result"] = run_scalability(
            SCALABILITY_SIZES, n_queries=100, seed=PAPER_SEED
        )
    return _SCALABILITY_CACHE["result"]


@pytest.fixture(scope="session")
def obs_registry():
    """A metrics registry installed for the whole benchmark session.

    Every instrumented layer (engine, session, index, retrieval) feeds
    it; the teardown appends a Prometheus dump to
    ``benchmarks/results/metrics.prom`` so a run's counters (distance
    computations, page reads, splits) are inspectable after the fact.
    """
    registry = obs.MetricsRegistry()
    with obs.use_metrics(registry):
        yield registry
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "metrics.prom").write_text(
        obs.prometheus_text(registry)
    )


@pytest.fixture(scope="session")
def report():
    """Print a result block and append it to benchmarks/results/latest.txt."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / "latest.txt"
    handle = path.open("a")

    def emit(text: str) -> None:
        print("\n" + text)
        handle.write(text + "\n\n")
        handle.flush()

    yield emit
    handle.close()
