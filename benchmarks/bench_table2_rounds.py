"""Table 2 — round-by-round quality of the 3-round feedback process.

Regenerates the paper's Table 2: MV precision/GTIR per round (plateauing
after round 2) against QD GTIR per round (monotone to ~1.0) with QD
precision defined only at the final round.
"""

from repro.eval.experiments import run_table2


def test_table2_rounds(benchmark, paper_engine, report):
    result = benchmark.pedantic(
        lambda: run_table2(paper_engine, trials=3, seed=2006),
        rounds=1,
        iterations=1,
    )
    report(result.format())
    rows = result.rows
    benchmark.extra_info["qd_gtir_by_round"] = [
        round(r.qd_gtir, 3) for r in rows
    ]
    benchmark.extra_info["mv_gtir_by_round"] = [
        round(r.mv_gtir, 3) for r in rows
    ]

    # Paper shape: QD has no precision before the last round.
    assert rows[0].qd_precision is None
    assert rows[-1].qd_precision is not None
    # QD GTIR grows monotonically and ends near 1.
    gtirs = [r.qd_gtir for r in rows]
    assert all(a <= b + 1e-9 for a, b in zip(gtirs, gtirs[1:]))
    assert gtirs[-1] > 0.9
    # MV plateaus: the round-2 → round-3 GTIR gain is marginal.
    assert abs(rows[2].mv_gtir - rows[1].mv_gtir) < 0.1
    # QD ends ahead of MV on both metrics.
    assert rows[-1].qd_gtir > rows[-1].mv_gtir
    assert rows[-1].qd_precision > rows[-1].mv_precision
