"""Extension — precision/recall versus result-set size.

The paper's §5.2.1 fixes the retrieved count at the ground-truth size.
This sweep varies it from 0.25× to 2× ground truth, exposing the §1.1
trade-off: enlarging the single k-NN neighbourhood buys MV recall only
by collapsing precision, while QD's localized subqueries keep precision
high as the result set grows because each extra slot comes from a
relevant cluster.
"""

from repro.eval.experiments import run_pr_sweep


def test_pr_sweep(benchmark, paper_engine, report):
    result = benchmark.pedantic(
        lambda: run_pr_sweep(paper_engine, seed=2006),
        rounds=1,
        iterations=1,
    )
    report(result.format())
    qd = {p.k_fraction: p for p in result.series("QD")}
    mv = {p.k_fraction: p for p in result.series("MV")}
    benchmark.extra_info["qd_p_at_1x"] = round(qd[1.0].precision, 3)
    benchmark.extra_info["mv_p_at_1x"] = round(mv[1.0].precision, 3)

    # Recall grows with k for both techniques.
    for series in (qd, mv):
        fractions = sorted(series)
        recalls = [series[f].recall for f in fractions]
        assert all(
            a <= b + 1e-9 for a, b in zip(recalls, recalls[1:])
        )
    # QD dominates MV at every operating point.
    for fraction in qd:
        assert qd[fraction].precision >= mv[fraction].precision
        assert qd[fraction].recall >= mv[fraction].recall - 0.05
    # The §1.1 dilemma, quantified: doubling the neighbourhood buys MV
    # only ~half the ground truth, while QD — drawing each extra slot
    # from a relevant cluster — is essentially complete by 2x.
    assert qd[2.0].recall > 0.85
    assert mv[2.0].recall < qd[1.0].recall
    # Past full recall, extra slots are necessarily irrelevant, so QD's
    # 2x precision approaches the 0.5 floor from above — still ahead of
    # MV's.
    assert qd[2.0].precision > mv[2.0].precision
