"""Extension — final-round speedup from the parallel subquery fan-out.

The paper's §3.3 decomposition yields *independent* localized multipoint
k-NN subqueries; ``repro.exec`` runs them concurrently.  This bench
measures wall-clock speedup of ``execute_final_round`` versus worker
count under the simulated disk-latency model (``page_read_latency_s``,
§5.2.2): every leaf page a subquery scans charges a device sleep, and
parallel workers overlap those sleeps exactly like independent disk
requests — so the speedup is reproducible on any core count.

``QD_BENCH_TINY=1`` shrinks the workload for CI smoke runs.

Acceptance (ISSUE): >= 1.5x at 4 workers on a >= 8-subquery workload,
with rankings bit-identical to serial execution.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.config import QDConfig, RFSConfig
from repro.core.ranking import execute_final_round
from repro.datasets.build import build_synthetic_database
from repro.exec import (
    ProcessSubqueryExecutor,
    SerialSubqueryExecutor,
    ThreadedSubqueryExecutor,
)
from repro.index.rfs import RFSStructure

TINY = os.environ.get("QD_BENCH_TINY") == "1"
N_IMAGES = 1_500 if TINY else 6_000
N_SUBQUERIES = 8 if TINY else 10
PAGE_LATENCY_S = 0.004  # one simulated device read (~ fast HDD seek)
REPEATS = 3
K = 60


@pytest.fixture(scope="module")
def speedup_workload():
    """A synthetic database + RFS + marks spanning many leaves."""
    database = build_synthetic_database(
        N_IMAGES, n_categories=max(20, N_SUBQUERIES * 2), seed=42
    )
    rfs = RFSStructure.build(
        database.features,
        RFSConfig(
            node_max_entries=60, node_min_entries=30, leaf_subclusters=4
        ),
        seed=42,
    )
    by_leaf: dict[int, list[int]] = {}
    for image_id in range(0, N_IMAGES, 3):
        leaf_id = rfs.leaf_of_item(image_id).node_id
        bucket = by_leaf.setdefault(leaf_id, [])
        if len(bucket) < 3:
            bucket.append(image_id)
    leaves = sorted(by_leaf)[:N_SUBQUERIES]
    assert len(leaves) == N_SUBQUERIES
    marks = [i for leaf_id in leaves for i in by_leaf[leaf_id]]
    rfs.io.page_read_latency_s = PAGE_LATENCY_S
    return rfs, marks


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _time_final_round(rfs, marks, executor) -> tuple[float, object]:
    """Best-of-REPEATS wall time of one final round on ``executor``."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = execute_final_round(
            rfs, marks, K, QDConfig(), rounds_used=3, executor=executor
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def test_parallel_speedup(speedup_workload, report, benchmark):
    rfs, marks = speedup_workload

    with SerialSubqueryExecutor() as serial:
        serial_s, baseline = _time_final_round(rfs, marks, serial)
    base_sig = _signature(baseline)
    assert baseline.n_groups >= N_SUBQUERIES

    rows = [
        "Final-round speedup vs worker count "
        f"({baseline.n_groups} subqueries, "
        f"{PAGE_LATENCY_S * 1000:.0f} ms/page)",
        f"  serial            {serial_s * 1000:8.1f} ms   1.00x",
    ]
    speedups = {}
    for workers in (1, 2, 4):
        with ThreadedSubqueryExecutor(workers) as threaded:
            thread_s, result = _time_final_round(rfs, marks, threaded)
        # Determinism first: the ranking must be bit-identical.
        assert _signature(result) == base_sig
        speedups[workers] = serial_s / thread_s
        rows.append(
            f"  thread x{workers}         {thread_s * 1000:8.1f} ms   "
            f"{speedups[workers]:.2f}x"
        )
    report("\n".join(rows))
    benchmark.extra_info["speedup_4_workers"] = round(speedups[4], 2)
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timing captured manually above; keep the bench in the report

    # Acceptance: overlapping the simulated page reads pays off.
    assert speedups[4] >= 1.5
    # More workers never makes it slower than the single-worker pool by
    # more than scheduling noise.
    assert speedups[4] >= speedups[1] * 0.8


@pytest.mark.skipif(
    not ProcessSubqueryExecutor.fork_available(),
    reason="fork start method unavailable",
)
def test_process_executor_identical_at_bench_scale(speedup_workload):
    rfs, marks = speedup_workload
    with SerialSubqueryExecutor() as serial:
        _, baseline = _time_final_round(rfs, marks, serial)
    with ProcessSubqueryExecutor(4) as procs:
        _, result = _time_final_round(rfs, marks, procs)
    assert _signature(result) == _signature(baseline)
