"""Extension — final-round speedup from the parallel subquery fan-out.

The paper's §3.3 decomposition yields *independent* localized multipoint
k-NN subqueries; ``repro.exec`` runs them concurrently.  This bench
measures wall-clock speedup of ``execute_final_round`` versus worker
count under the simulated disk-latency model (``page_read_latency_s``,
§5.2.2): every leaf page a subquery scans charges a device sleep, and
parallel workers overlap those sleeps exactly like independent disk
requests — so the speedup is reproducible on any core count.

Runs two ways:

* ``pytest benchmarks/bench_parallel_speedup.py`` — report/benchmark
  fixtures, rows appended to ``benchmarks/results/latest.txt``.
* ``python benchmarks/bench_parallel_speedup.py [--tiny]`` —
  fixture-free script entry for CI smoke (same rows, same results file).

Both emit the canonical ``BENCH_parallel_speedup.json`` record.
``QD_BENCH_TINY=1`` (or ``--tiny``) shrinks the workload for CI.

Acceptance (ISSUE): >= 1.5x at 4 workers on a >= 8-subquery workload,
with rankings bit-identical to serial execution.
"""

from __future__ import annotations

import os
import time

import pytest

from _harness import TINY_ENV, emit, tiny_arg_parser
from repro.config import QDConfig, RFSConfig
from repro.core.ranking import execute_final_round
from repro.datasets.build import build_synthetic_database
from repro.exec import (
    ProcessSubqueryExecutor,
    SerialSubqueryExecutor,
    ThreadedSubqueryExecutor,
)
from repro.index.rfs import RFSStructure
from repro.obs.bench import BenchResult

TINY = os.environ.get("QD_BENCH_TINY") == "1"
PAGE_LATENCY_S = 0.004  # one simulated device read (~ fast HDD seek)
REPEATS = 3
K = 60


def _params(tiny: bool) -> dict:
    if tiny:
        return dict(n_images=1_500, n_subqueries=8)
    return dict(n_images=6_000, n_subqueries=10)


def _build_workload(tiny: bool):
    """A synthetic database + RFS + marks spanning many leaves."""
    p = _params(tiny)
    n_images, n_subqueries = p["n_images"], p["n_subqueries"]
    database = build_synthetic_database(
        n_images, n_categories=max(20, n_subqueries * 2), seed=42
    )
    rfs = RFSStructure.build(
        database.features,
        RFSConfig(
            node_max_entries=60, node_min_entries=30, leaf_subclusters=4
        ),
        seed=42,
    )
    by_leaf: dict[int, list[int]] = {}
    for image_id in range(0, n_images, 3):
        leaf_id = rfs.leaf_of_item(image_id).node_id
        bucket = by_leaf.setdefault(leaf_id, [])
        if len(bucket) < 3:
            bucket.append(image_id)
    leaves = sorted(by_leaf)[:n_subqueries]
    assert len(leaves) == n_subqueries
    marks = [i for leaf_id in leaves for i in by_leaf[leaf_id]]
    rfs.io.page_read_latency_s = PAGE_LATENCY_S
    return rfs, marks


@pytest.fixture(scope="module")
def speedup_workload():
    return _build_workload(TINY)


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _time_final_round(rfs, marks, executor) -> tuple[float, object]:
    """Best-of-REPEATS wall time of one final round on ``executor``."""
    best = float("inf")
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        result = execute_final_round(
            rfs, marks, K, QDConfig(), rounds_used=3, executor=executor
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def run_parallel_bench(workload, tiny: bool) -> tuple[list[str], dict]:
    """Run the speedup sweep; returns (report rows, metrics dict)."""
    rfs, marks = workload

    with SerialSubqueryExecutor() as serial:
        serial_s, baseline = _time_final_round(rfs, marks, serial)
    base_sig = _signature(baseline)
    assert baseline.n_groups >= _params(tiny)["n_subqueries"]

    rows = [
        "Final-round speedup vs worker count "
        f"({baseline.n_groups} subqueries, "
        f"{PAGE_LATENCY_S * 1000:.0f} ms/page)",
        f"  serial            {serial_s * 1000:8.1f} ms   1.00x",
    ]
    speedups = {}
    for workers in (1, 2, 4):
        with ThreadedSubqueryExecutor(workers) as threaded:
            thread_s, result = _time_final_round(rfs, marks, threaded)
        # Determinism first: the ranking must be bit-identical.
        assert _signature(result) == base_sig
        speedups[workers] = serial_s / thread_s
        rows.append(
            f"  thread x{workers}         {thread_s * 1000:8.1f} ms   "
            f"{speedups[workers]:.2f}x"
        )
    metrics = {
        "speedup_1": speedups[1],
        "speedup_2": speedups[2],
        "speedup_4": speedups[4],
        "serial_s": serial_s,
    }
    return rows, metrics


def _bench_result(tiny: bool, metrics: dict) -> BenchResult:
    """The canonical ``BENCH_parallel_speedup.json`` record."""
    result = BenchResult.new(
        "parallel_speedup", {**_params(tiny), "tiny": tiny}
    )
    result.record(
        "speedup_2", metrics["speedup_2"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "speedup_4", metrics["speedup_4"], unit="x",
        higher_is_better=True,
    )
    # One thread through the pool vs in-line: pure dispatch overhead,
    # hovers near 1.0x — informational only.
    result.record(
        "speedup_1", metrics["speedup_1"], unit="x",
        higher_is_better=True, compare=False,
    )
    result.record(
        "serial_s", metrics["serial_s"], unit="s",
        higher_is_better=False, compare=False,
    )
    return result


def _check(metrics: dict) -> None:
    # Acceptance: overlapping the simulated page reads pays off.
    assert metrics["speedup_4"] >= 1.5
    # More workers never makes it slower than the single-worker pool by
    # more than scheduling noise.
    assert metrics["speedup_4"] >= metrics["speedup_1"] * 0.8


def test_parallel_speedup(speedup_workload, report, benchmark):
    rows, metrics = run_parallel_bench(speedup_workload, TINY)
    report("\n".join(rows))
    _bench_result(TINY, metrics).write(
        os.path.join(os.path.dirname(__file__), "results")
    )
    benchmark.extra_info["speedup_4_workers"] = round(
        metrics["speedup_4"], 2
    )
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timing captured manually above; keep the bench in the report
    _check(metrics)


@pytest.mark.skipif(
    not ProcessSubqueryExecutor.fork_available(),
    reason="fork start method unavailable",
)
def test_process_executor_identical_at_bench_scale(speedup_workload):
    rfs, marks = speedup_workload
    with SerialSubqueryExecutor() as serial:
        _, baseline = _time_final_round(rfs, marks, serial)
    with ProcessSubqueryExecutor(4) as procs:
        _, result = _time_final_round(rfs, marks, procs)
    assert _signature(result) == _signature(baseline)


def main(argv=None) -> int:
    parser = tiny_arg_parser(
        "Parallel subquery fan-out benchmark (fixture-free entry)"
    )
    args = parser.parse_args(argv)
    tiny = args.tiny or TINY_ENV
    workload = _build_workload(tiny)
    rows, metrics = run_parallel_bench(workload, tiny)
    emit(rows, _bench_result(tiny, metrics))
    _check(metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
