"""Ablation — user-noise robustness (§5.2's "relevance feedback is user
subjective", quantified).

Sweeps the simulated user's miss and false-mark rates and compares QD
against MV under the same noisy users: QD's advantage should survive
moderate noise, degrading gracefully rather than collapsing.
"""

from repro.eval.robustness import run_noise_sweep


def test_noise_robustness(benchmark, paper_engine, report):
    result = benchmark.pedantic(
        lambda: run_noise_sweep(paper_engine, trials=2, seed=2006),
        rounds=1,
        iterations=1,
    )
    report(result.format())
    clean = result.points[0]
    noisy = result.points[-1]
    benchmark.extra_info["clean_qd"] = round(clean.qd_precision, 3)
    benchmark.extra_info["noisy_qd"] = round(noisy.qd_precision, 3)

    # QD ahead of MV at every noise level ...
    for point in result.points:
        assert point.qd_precision > point.mv_precision, point
        assert point.qd_gtir >= point.mv_gtir - 0.05, point
    # ... and degrades gracefully: even at 50% misses + 10% false marks
    # it keeps most of its clean-user quality.
    assert noisy.qd_precision > 0.5 * clean.qd_precision
    assert noisy.qd_gtir > 0.5
