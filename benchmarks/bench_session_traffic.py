"""Perf — session traffic simulator over externalized session state.

Extends ``bench_cache_throughput``'s Zipfian stream into a full traffic
model for the externalized-session serving path (ROADMAP item 2): a
Poisson arrival process opens feedback dialogues against a pool of
Zipf-ranked query interests; each dialogue browses, thinks (virtual
time), marks, and either finalizes or abandons mid-dialogue; every
request is routed to a different stateless front-end worker
(:class:`repro.core.SessionFrontEnd`), so *every* round is a worker
handoff served by resuming the session from the shared
:class:`repro.sessionstore.SessionStore`.

Measured:

* **sessions/sec** — completed dialogues per second of server compute
  (virtual think time excluded), store-backed with per-round
  checkpoints and handoffs,
* **checkpoint overhead** — store-backed wall time over the identical
  workload driven through plain in-memory sessions (no store, no
  handoff),
* **p95 checkpoint latency** — per-``put`` store latency,
* **handoff parity** — fraction of completed dialogues whose final
  rankings are bit-identical to the never-suspended baseline (must be
  1.0: resuming is not allowed to change results),
* **TTL sweep** — abandoned dialogues must be exactly the ones removed
  by the end-of-run expiry sweep.

Runs two ways:

* ``pytest benchmarks/bench_session_traffic.py`` — report/benchmark
  fixtures, rows appended to ``benchmarks/results/latest.txt``.
* ``python benchmarks/bench_session_traffic.py [--tiny]`` —
  fixture-free script entry for CI smoke (same rows, same results
  file), emitting the canonical ``BENCH_session_traffic.json``.

``QD_BENCH_TINY=1`` (or ``--tiny``) shrinks the workload for CI.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from _harness import TINY_ENV, emit, tiny_arg_parser
from repro.core import QueryDecompositionEngine, SessionFrontEnd
from repro.core.session import FeedbackSession
from repro.errors import SessionStateError
from repro.datasets.build import build_synthetic_database
from repro.obs.bench import BenchResult
from repro.sessionstore import SQLiteSessionStore, SessionStore

TINY = os.environ.get("QD_BENCH_TINY") == "1"
SEED = 2006
ZIPF_EXPONENT = 1.1
MARKS_PER_ROUND = 6


def _params(tiny: bool) -> dict:
    """Traffic shape: arrivals, think time, abandonment, worker pool."""
    if tiny:
        return dict(
            n_images=2_000, n_categories=30, pool=10, sessions=24,
            rounds=3, k=40, workers=3, screens=4,
            arrival_rate=50.0, think_s=2.0, abandon=0.15,
            # Tiny sessions do ~0.5 ms of compute, so store I/O
            # dominates; the smoke gate is correctness + a sanity bound.
            repeats=2, max_overhead=12.0,
        )
    return dict(
        n_images=15_000, n_categories=150, pool=40, sessions=150,
        rounds=3, k=60, workers=4, screens=4,
        arrival_rate=50.0, think_s=2.0, abandon=0.15,
        # Sanity ceiling only (observed 3.5-5x on a loaded 1-cpu box) —
        # drift is caught by bench-regress against the committed
        # baseline, not by this bound.
        repeats=2, max_overhead=10.0,
    )


@dataclass
class SessionPlan:
    """One pre-drawn dialogue: interest, seed, and (maybe) an abandon."""

    sid: str
    category: int
    seed: int
    arrival_t: float
    think: Tuple[float, ...]
    #: Round after which the user silently walks away (None = completes).
    abandon_after: Optional[int]


class _TimedStore:
    """Store wrapper that records per-checkpoint ``put`` latency."""

    def __init__(self, inner: SessionStore) -> None:
        self._inner = inner
        self.put_seconds: List[float] = []

    def put(self, state) -> None:
        start = time.perf_counter()
        self._inner.put(state)
        self.put_seconds.append(time.perf_counter() - start)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)


def _make_plans(p: dict, labels: np.ndarray) -> List[SessionPlan]:
    """Pre-draw every stochastic choice so both phases replay exactly."""
    rng = np.random.default_rng(SEED)
    categories = rng.choice(p["n_categories"], size=p["pool"], replace=False)
    ranks = np.arange(1, p["pool"] + 1, dtype=np.float64)
    probs = ranks ** -ZIPF_EXPONENT
    probs /= probs.sum()
    plans: List[SessionPlan] = []
    t = 0.0
    for i in range(p["sessions"]):
        t += float(rng.exponential(1.0 / p["arrival_rate"]))
        abandon_after = None
        for rnd in range(1, p["rounds"]):
            if rng.random() < p["abandon"]:
                abandon_after = rnd
                break
        plans.append(
            SessionPlan(
                sid=f"s{i:05d}",
                category=int(categories[rng.choice(p["pool"], p=probs)]),
                seed=int(rng.integers(2**31 - 1)),
                arrival_t=t,
                think=tuple(
                    float(v)
                    for v in rng.exponential(
                        p["think_s"], size=2 * p["rounds"] + 2
                    )
                ),
                abandon_after=abandon_after,
            )
        )
    return plans


def _mark_fn(labels: np.ndarray, category: int):
    def mark(shown):
        return [i for i in shown if labels[i] == category][:MARKS_PER_ROUND]

    return mark


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _run_baseline(engine, plans, p, labels) -> Tuple[float, Dict[str, list]]:
    """The identical workload through plain in-memory sessions."""
    signatures: Dict[str, list] = {}
    start = time.perf_counter()
    for plan in plans:
        session = FeedbackSession(
            engine.rfs, engine.config, seed=plan.seed,
            executor=engine.executor, session_id=plan.sid,
        )
        mark = _mark_fn(labels, plan.category)
        rounds = plan.abandon_after or p["rounds"]
        for _ in range(rounds):
            session.submit(mark(session.display(screens=p["screens"])))
        # A dialogue whose category never surfaced has nothing marked;
        # finalize would (correctly) refuse, so it ends fruitless.
        if plan.abandon_after is None and session.marked_ids:
            signatures[plan.sid] = _signature(session.finalize(p["k"]))
    return time.perf_counter() - start, signatures


def _run_traffic(
    engine, store, plans, p, labels
) -> Tuple[float, Dict[str, list], int]:
    """Event-driven replay: virtual clock, per-op worker handoff.

    Virtual time orders the interleaving (so concurrent dialogues
    genuinely interleave on the store); only server compute counts
    toward the measured wall time.  Returns (compute seconds,
    signatures, handoffs) — a handoff being any op that resumed a
    session last touched by a different worker.
    """
    workers = [
        SessionFrontEnd(engine, worker_id=f"w{i}")
        for i in range(p["workers"])
    ]
    # (virtual_t, seq, plan, step). Steps: 0=open, then per round
    # display/submit pairs, finally finalize or abandon.
    events: List[Tuple[float, int, SessionPlan, int]] = []
    for seq, plan in enumerate(plans):
        heapq.heappush(events, (plan.arrival_t, seq, plan, 0))
    seq = len(plans)
    screens: Dict[str, List[int]] = {}
    last_worker: Dict[str, int] = {}
    signatures: Dict[str, list] = {}
    handoffs = 0
    compute_s = 0.0
    while events:
        t, _, plan, step = heapq.heappop(events)
        rounds = plan.abandon_after or p["rounds"]
        last_step = 1 + 2 * rounds  # step index of finalize/abandon
        worker_idx = (step * 7919 + int(plan.seed)) % p["workers"]
        worker = workers[worker_idx]
        previous = last_worker.get(plan.sid)
        if previous is not None and previous != worker_idx:
            handoffs += 1
        last_worker[plan.sid] = worker_idx
        start = time.perf_counter()
        if step == 0:
            worker.open(seed=plan.seed, session_id=plan.sid)
        elif step == last_step:
            if plan.abandon_after is not None:
                pass  # the user walks away; TTL sweep reaps the record
            else:
                try:
                    signatures[plan.sid] = _signature(
                        worker.finalize(plan.sid, p["k"])
                    )
                except SessionStateError:
                    # Fruitless dialogue (nothing ever marked): the
                    # user closes it, dropping the record — mirrors the
                    # baseline's skip, so parity sets stay identical.
                    worker.abandon(plan.sid)
        elif step % 2 == 1:
            screens[plan.sid] = worker.display(
                plan.sid, screens=p["screens"]
            )
        else:
            mark = _mark_fn(labels, plan.category)
            worker.submit(plan.sid, mark(screens[plan.sid]))
        compute_s += time.perf_counter() - start
        if step < last_step:
            think = plan.think[step % len(plan.think)]
            heapq.heappush(events, (t + think, seq, plan, step + 1))
            seq += 1
    return compute_s, signatures, handoffs


def run_traffic_bench(tiny: bool, db_path: Optional[str] = None) -> tuple:
    """Run every measurement; returns (report rows, metrics dict)."""
    import tempfile

    p = _params(tiny)
    database = build_synthetic_database(
        p["n_images"], n_categories=p["n_categories"], seed=SEED
    )
    labels = database.labels
    plans = _make_plans(p, labels)
    n_completed = sum(1 for plan in plans if plan.abandon_after is None)
    n_abandoned = len(plans) - n_completed

    with QueryDecompositionEngine.build(database, seed=SEED) as engine:
        # Baseline: plain in-memory sessions, no store, no handoff.
        baseline_s = float("inf")
        baseline_sigs: Dict[str, list] = {}
        for _ in range(p["repeats"]):
            elapsed, baseline_sigs = _run_baseline(
                engine, plans, p, labels
            )
            baseline_s = min(baseline_s, elapsed)

        # Traffic: SQLite store (the durable multi-worker backend),
        # per-round checkpoints, every op on a rotating worker.
        workdir = db_path or tempfile.mkdtemp(prefix="qd-bench-sessions-")
        store = _TimedStore(
            SQLiteSessionStore(os.path.join(workdir, "sessions.db"))
        )
        engine.attach_session_store(store)
        traffic_s = float("inf")
        traffic_sigs: Dict[str, list] = {}
        handoffs = 0
        for _ in range(p["repeats"]):
            store.sweep_expired(0.0, now=time.time() + 1e6)  # reset
            elapsed, traffic_sigs, handoffs = _run_traffic(
                engine, store, plans, p, labels
            )
            traffic_s = min(traffic_s, elapsed)

        # Abandoned dialogues linger until the TTL sweep reaps them.
        leftover = store.list_ids()
        swept = store.sweep_expired(1e-9)
        store.close()
        engine.detach_session_store()

    matched = sum(
        1
        for sid, sig in baseline_sigs.items()
        if traffic_sigs.get(sid) == sig
    )
    # Fruitless dialogues (nothing marked → no finalize) are excluded
    # from both signature sets identically, so parity stays honest.
    n_finalized = len(baseline_sigs)
    parity = matched / max(1, n_finalized)
    overhead = traffic_s / baseline_s
    sessions_per_s = n_finalized / traffic_s
    checkpoint_p95_ms = (
        float(np.percentile(store.put_seconds, 95)) * 1000.0
        if store.put_seconds
        else 0.0
    )

    scale = "tiny" if tiny else "full"
    rows = [
        f"Session traffic: {len(plans)} dialogues ({n_finalized} "
        f"finalized, {n_completed - n_finalized} fruitless, "
        f"{n_abandoned} abandoned), {p['rounds']} rounds, "
        f"{p['workers']} workers, {p['n_images']} images ({scale})",
        f"  in-memory baseline   {baseline_s * 1000:8.1f} ms   "
        f"{n_finalized / baseline_s:7.1f} sessions/s",
        f"  sqlite store+handoff {traffic_s * 1000:8.1f} ms   "
        f"{sessions_per_s:7.1f} sessions/s   "
        f"{overhead:.2f}x overhead",
        f"  handoffs {handoffs}, parity {parity:.0%}, checkpoint p95 "
        f"{checkpoint_p95_ms:.2f} ms, swept {len(swept)} abandoned",
    ]
    metrics = {
        "sessions_per_s": sessions_per_s,
        "baseline_sessions_per_s": n_completed / baseline_s,
        "checkpoint_overhead": overhead,
        "checkpoint_p95_ms": checkpoint_p95_ms,
        "handoff_parity": parity,
        "handoffs": float(handoffs),
        "swept": float(len(swept)),
        "leftover": float(len(leftover)),
        "n_abandoned": float(n_abandoned),
        "max_overhead": p["max_overhead"],
    }
    return rows, metrics


def _bench_result(tiny: bool, metrics: dict) -> BenchResult:
    """The canonical ``BENCH_session_traffic.json`` record."""
    p = _params(tiny)
    result = BenchResult.new("session_traffic", {**p, "tiny": tiny})
    result.record(
        "handoff_parity", metrics["handoff_parity"], unit="ratio",
        higher_is_better=True, min_abs=0.0,
    )
    result.record(
        "checkpoint_overhead", metrics["checkpoint_overhead"], unit="x",
        higher_is_better=False, min_abs=0.6,
    )
    result.record(
        "sessions_per_s", metrics["sessions_per_s"], unit="1/s",
        higher_is_better=True, compare=False,
    )
    result.record(
        "checkpoint_p95_ms", metrics["checkpoint_p95_ms"], unit="ms",
        higher_is_better=False, compare=False,
    )
    for name in ("handoffs", "swept", "n_abandoned"):
        result.record(name, metrics[name], unit="", compare=False)
    return result


def _check(metrics: dict) -> None:
    # Resume-under-handoff must never change a ranking.
    assert metrics["handoff_parity"] == 1.0
    # Checkpointing every round costs real I/O but must stay bounded.
    assert metrics["checkpoint_overhead"] <= metrics["max_overhead"]
    # Exactly the abandoned dialogues survive to the TTL sweep.
    assert metrics["swept"] == metrics["n_abandoned"]
    assert metrics["leftover"] == metrics["n_abandoned"]


def test_session_traffic(report, benchmark):
    rows, metrics = run_traffic_bench(TINY)
    report("\n".join(rows))
    _bench_result(TINY, metrics).write(
        os.path.join(os.path.dirname(__file__), "results")
    )
    benchmark.extra_info["sessions_per_s"] = round(
        metrics["sessions_per_s"], 2
    )
    benchmark.extra_info["checkpoint_overhead"] = round(
        metrics["checkpoint_overhead"], 2
    )
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timing captured manually above; keep the bench in the report
    _check(metrics)


def main(argv=None) -> int:
    parser = tiny_arg_parser(
        "Session traffic simulator benchmark (fixture-free entry)"
    )
    args = parser.parse_args(argv)
    tiny = args.tiny or TINY_ENV
    rows, metrics = run_traffic_bench(tiny)
    emit(rows, _bench_result(tiny, metrics))
    _check(metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
