"""Ablation — the §3.4 merge rule (mark-proportional vs uniform).

The paper allocates each localized subquery a number of result slots
proportional to the relevant images the user identified there, on the
rationale that heavier-marked subclusters better match the query intent.
This ablation replays identical sessions with uniform allocation and
compares precision: uniform allocation over-draws from sparse subclusters
(which run out of relevant members and pad with noise), so proportional
should match or beat it.
"""

import numpy as np

from repro.datasets.queryset import get_query
from repro.eval.metrics import precision_at
from repro.eval.oracle import SimulatedUser
from repro.eval.protocol import default_k
from repro.eval.reporting import format_table
from repro.utils.rng import spawn_seeds

QUERIES = ("person", "bird", "car", "computer")


def _run_session(engine, query, seed, uniform):
    database = engine.database
    user = SimulatedUser(database, query, seed=seed)
    session = engine.new_session(seed=seed)
    for screens in (6, 10, 1000):
        session.submit(user.mark(session.display(screens=screens)))
    k = default_k(database, query)
    result = session.finalize(k, uniform_merge=uniform)
    return precision_at(result.flatten(k), database, query)


def test_ablation_merge_policy(benchmark, paper_engine, report):
    engine = paper_engine

    def measure():
        rows = []
        for name in QUERIES:
            query = get_query(name)
            proportional, uniform = [], []
            for seed in spawn_seeds(97, 3):
                proportional.append(
                    _run_session(engine, query, seed, uniform=False)
                )
                uniform.append(
                    _run_session(engine, query, seed, uniform=True)
                )
            rows.append(
                (
                    name,
                    float(np.mean(proportional)),
                    float(np.mean(uniform)),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        format_table(
            ["query", "proportional merge", "uniform merge"],
            rows,
            title="Ablation: result allocation rule (paper: proportional)",
        )
    )
    benchmark.extra_info["rows"] = rows
    mean_prop = float(np.mean([r[1] for r in rows]))
    mean_unif = float(np.mean([r[2] for r in rows]))
    # The paper's proportional rule does not lose to uniform overall.
    assert mean_prop >= mean_unif - 0.05
