"""Extension — final-round speedup from the leaf-contiguous feature store.

The store (``repro.store``) reorders the database into leaf-contiguous
blocks and serves every localized k-NN scan through batched norm-expansion
kernels instead of the legacy per-member gather-then-loop path.  This
bench measures the end-to-end ``execute_final_round`` win on a
scan-heavy workload (few feedback groups, large per-group quota — the
shape where the legacy Python inner loop degrades), the memmap
cold-start cost (``FeatureStore.open`` + attach + first round), and the
per-leaf kernel throughput of the fused multipoint kernel versus the
per-representative loop.

Runs two ways:

* ``pytest benchmarks/bench_store_layout.py`` — report/benchmark
  fixtures, rows appended to ``benchmarks/results/latest.txt``.
* ``python benchmarks/bench_store_layout.py [--tiny]`` — fixture-free
  script entry for CI smoke (same rows, same results file).

``QD_BENCH_TINY=1`` (or ``--tiny``) shrinks the workload for CI.

Acceptance (ISSUE): the warm store beats the legacy path by >= 2x at
full scale (the tiny smoke asserts a relaxed >= 1.2x), with rankings
bit-identical across legacy / inmem / memmap.
"""

from __future__ import annotations

import os
import tempfile
import time

import numpy as np

from _harness import TINY_ENV, emit, tiny_arg_parser
from repro import obs
from repro.config import QDConfig, RFSConfig
from repro.core.ranking import execute_final_round
from repro.datasets.build import build_synthetic_database
from repro.index.rfs import RFSStructure
from repro.retrieval.multipoint import MultipointQuery
from repro.store import FeatureStore, multipoint_distances

TINY = os.environ.get("QD_BENCH_TINY") == "1"
SEED = 2006
N_QUERY_CATEGORIES = 3
MARKS_PER_CATEGORY = 4
ROUNDS_USED = 3
KERNEL_ITERS = 50


def _params(tiny: bool) -> dict:
    """Workload shape: few groups, large quotas -> multi-leaf scans."""
    if tiny:
        return dict(n_images=2_000, n_categories=30, k=300, repeats=3,
                    min_speedup=1.2)
    return dict(n_images=15_000, n_categories=150, k=1_200, repeats=5,
                min_speedup=2.0)


def _build_workload(p: dict):
    database = build_synthetic_database(
        p["n_images"], n_categories=p["n_categories"], seed=SEED
    )
    rfs = RFSStructure.build(database.features, RFSConfig(), seed=SEED)
    categories = np.linspace(
        3, p["n_categories"] - 10, N_QUERY_CATEGORIES
    ).astype(int)
    marks = [
        int(image_id)
        for cat in categories
        for image_id in np.flatnonzero(database.labels == cat)[
            :MARKS_PER_CATEGORY
        ]
    ]
    assert len(marks) == N_QUERY_CATEGORIES * MARKS_PER_CATEGORY
    return rfs, marks


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _assert_rankings_agree(legacy_result, store_result) -> None:
    """Legacy-vs-store parity: same groups, same member sets, scores
    equal to float32 precision.

    The norm-expansion kernel computes the same distances as the legacy
    per-member loop but in a different summation order and dtype, so the
    last float bits — and the relative order of near-exact ties — may
    differ.  (Bit-identical parity is between the inmem and memmap
    stores, which share bytes and kernels; the test suite proves it.)
    """
    assert len(legacy_result.groups) == len(store_result.groups)
    for legacy_group, store_group in zip(
        legacy_result.groups, store_result.groups
    ):
        assert legacy_group.leaf_node_id == store_group.leaf_node_id
        legacy_ids = [item.item_id for item in legacy_group.items]
        store_ids = [item.item_id for item in store_group.items]
        assert set(legacy_ids) == set(store_ids)
        np.testing.assert_allclose(
            [item.score for item in legacy_group.items],
            [item.score for item in store_group.items],
            rtol=1e-5,
            atol=1e-5,
        )


def _time_round(rfs, marks, k, repeats) -> tuple[float, object]:
    """Best-of-``repeats`` wall time of one final round."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = execute_final_round(
            rfs, marks, k, QDConfig(), rounds_used=ROUNDS_USED
        )
        best = min(best, time.perf_counter() - start)
    return best, result


def _time_cold_start(rfs, marks, k, store_dir, repeats) -> float:
    """Best-of-``repeats`` memmap cold start: open + attach + round."""
    best = float("inf")
    for _ in range(repeats):
        rfs.detach_store()
        start = time.perf_counter()
        rfs.attach_store(
            FeatureStore.open(store_dir, mode="memmap"), validate=False
        )
        execute_final_round(rfs, marks, k, QDConfig(), rounds_used=ROUNDS_USED)
        best = min(best, time.perf_counter() - start)
    return best


def _kernel_throughput(rfs, marks) -> tuple[float, float, int]:
    """(fused, looped) distance evals/s on the largest leaf block."""
    store = rfs.store
    leaf = max(
        (node for node in rfs.nodes.values() if node.is_leaf),
        key=lambda node: node.size,
    )
    block, _, sqnorms = store.node_block(leaf.node_id)
    reps = rfs.vectors_for(np.asarray(marks, dtype=np.int64))
    query = MultipointQuery(reps)
    evals = block.shape[0] * reps.shape[0]

    def best_of(fn) -> float:
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            for _ in range(KERNEL_ITERS):
                fn()
            best = min(best, (time.perf_counter() - start) / KERNEL_ITERS)
        return best

    fused_s = best_of(
        lambda: multipoint_distances(
            block, query.points, query.weights, block_sqnorms=sqnorms
        )
    )
    looped_s = best_of(lambda: query.distances(np.asarray(block)))
    return evals / fused_s, evals / looped_s, evals


def run_store_bench(tiny: bool) -> tuple[list[str], dict]:
    """Run every measurement; returns (report rows, metrics dict)."""
    p = _params(tiny)
    rfs, marks = _build_workload(p)

    rfs.detach_store()
    legacy_s, legacy_result = _time_round(rfs, marks, p["k"], p["repeats"])

    store = FeatureStore.build(rfs)
    rfs.attach_store(store)
    warm_s, warm_result = _time_round(rfs, marks, p["k"], p["repeats"])
    _assert_rankings_agree(legacy_result, warm_result)

    # Obs-overhead leg: the same warm workload with a live tracer and
    # metrics registry installed.  Rankings must stay bit-identical and
    # the slowdown ratio is tracked as its own bench metric.
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    with obs.use_tracer(tracer), obs.use_metrics(registry):
        obs_s, obs_result = _time_round(rfs, marks, p["k"], p["repeats"])
    assert _signature(obs_result) == _signature(warm_result)
    assert len(tracer.spans) > 0
    assert registry.counters  # instrumentation actually fired

    with tempfile.TemporaryDirectory() as tmp:
        store.save(tmp)
        cold_s = _time_cold_start(rfs, marks, p["k"], tmp, p["repeats"])
        rfs.detach_store()
        rfs.attach_store(
            FeatureStore.open(tmp, mode="memmap"), validate=False
        )
        memmap_s, memmap_result = _time_round(
            rfs, marks, p["k"], p["repeats"]
        )
        # Same bytes + same kernels: memmap is bit-identical to inmem.
        assert _signature(memmap_result) == _signature(warm_result)
        fused_eps, looped_eps, evals = _kernel_throughput(rfs, marks)
    rfs.detach_store()

    warm_speedup = legacy_s / warm_s
    memmap_speedup = legacy_s / memmap_s
    kernel_speedup = fused_eps / looped_eps
    obs_overhead = obs_s / warm_s
    scale = "tiny" if tiny else "full"
    rows = [
        "Feature-store layout: final round, "
        f"{p['n_images']} images, {len(marks)} marks, k={p['k']} "
        f"({scale})",
        f"  legacy gather-loop   {legacy_s * 1000:8.1f} ms   1.00x",
        f"  store warm (inmem)   {warm_s * 1000:8.1f} ms   "
        f"{warm_speedup:.2f}x",
        f"  warm + obs enabled   {obs_s * 1000:8.1f} ms   "
        f"(overhead {obs_overhead:.2f}x, rankings identical)",
        f"  store warm (memmap)  {memmap_s * 1000:8.1f} ms   "
        f"{memmap_speedup:.2f}x",
        f"  memmap cold start    {cold_s * 1000:8.1f} ms   "
        "(open + attach + first round)",
        f"  leaf kernel: fused {fused_eps / 1e6:6.1f} M evals/s vs "
        f"per-rep loop {looped_eps / 1e6:6.1f} M evals/s "
        f"({kernel_speedup:.1f}x, {evals} evals/block)",
    ]
    metrics = {
        "warm_speedup": warm_speedup,
        "memmap_speedup": memmap_speedup,
        "kernel_speedup": kernel_speedup,
        "obs_overhead": obs_overhead,
        "legacy_s": legacy_s,
        "warm_s": warm_s,
        "obs_s": obs_s,
        "memmap_s": memmap_s,
        "cold_start_s": cold_s,
        "min_speedup": p["min_speedup"],
    }
    return rows, metrics


def _bench_result(tiny: bool, metrics: dict) -> obs.BenchResult:
    """The canonical ``BENCH_store_layout.json`` record."""
    p = _params(tiny)
    result = obs.BenchResult.new("store_layout", {**p, "tiny": tiny})
    result.record(
        "warm_speedup", metrics["warm_speedup"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "memmap_speedup", metrics["memmap_speedup"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "kernel_speedup", metrics["kernel_speedup"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "obs_overhead", metrics["obs_overhead"], unit="x",
        higher_is_better=False, min_abs=0.15,
    )
    for name in ("legacy_s", "warm_s", "obs_s", "memmap_s",
                 "cold_start_s"):
        result.record(
            name, metrics[name], unit="s", higher_is_better=False,
            compare=False,
        )
    return result


def _check(metrics: dict) -> None:
    # Acceptance: batched leaf scans beat the legacy per-member loop.
    assert metrics["warm_speedup"] >= metrics["min_speedup"]
    # The memmap backing serves the same kernels from the same bytes —
    # it must stay within noise of the in-RAM store.
    assert metrics["memmap_speedup"] >= metrics["warm_speedup"] * 0.5
    # The fused kernel never loses to the per-representative loop.
    assert metrics["kernel_speedup"] >= 1.0
    # Live tracing + metrics must stay cheap (the nominal budget is 5%;
    # this smoke bound only catches a broken hot path, not CI jitter).
    assert metrics["obs_overhead"] <= 1.5


def test_store_layout_speedup(report, benchmark):
    rows, metrics = run_store_bench(TINY)
    report("\n".join(rows))
    _bench_result(TINY, metrics).write(
        os.path.join(os.path.dirname(__file__), "results")
    )
    benchmark.extra_info["warm_speedup"] = round(metrics["warm_speedup"], 2)
    benchmark.extra_info["memmap_speedup"] = round(
        metrics["memmap_speedup"], 2
    )
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timing captured manually above; keep the bench in the report
    _check(metrics)


def main(argv=None) -> int:
    parser = tiny_arg_parser(
        "Feature-store layout benchmark (fixture-free entry)"
    )
    args = parser.parse_args(argv)
    tiny = args.tiny or TINY_ENV
    rows, metrics = run_store_bench(tiny)
    emit(rows, _bench_result(tiny, metrics))
    _check(metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
