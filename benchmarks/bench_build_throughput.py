"""Perf — parallel, vectorized offline RFS build pipeline.

Models the offline index build at the paper's scale (15,000 images)
with the I/O model charging a per-page device latency, the way a build
over a disk-resident feature set would pay for reading each node's
members.  Three timed legs build the *identical* structure:

* **serial naive** — the pre-optimisation baseline: the original
  per-cluster Lloyd's loops restored via the retained ``_assign_naive``
  / ``_lloyd_update_naive`` reference kernels,
* **serial vectorized** — the scatter-add / blocked-distance kernels
  on one worker,
* **thread x N** — the vectorized kernels with representative
  selection and bulk-load bisection fanned out over the build executor,
  overlapping each node's simulated page reads.

A fourth (untimed) leg builds with the process executor and checks
parity only.  Every leg must produce a bit-identical structure — same
node ids, members, boxes, and representatives — which is the build
pipeline's core contract.

Runs two ways:

* ``pytest benchmarks/bench_build_throughput.py`` — report/benchmark
  fixtures, rows appended to ``benchmarks/results/latest.txt``.
* ``python benchmarks/bench_build_throughput.py [--tiny]`` —
  fixture-free script entry for CI smoke (same rows, same results file).

``QD_BENCH_TINY=1`` (or ``--tiny``) shrinks the workload for CI.

Acceptance (ISSUE): >= 2.5x build throughput at 4 workers vs the
serial pre-PR baseline at full scale (the tiny smoke asserts a relaxed
>= 1.2x), with the parallel build bit-identical to the serial one.
"""

from __future__ import annotations

import os
import time
from importlib import import_module
from unittest import mock

from _harness import TINY_ENV, emit, tiny_arg_parser
from repro.config import BuildConfig, RFSConfig
from repro.obs.bench import BenchResult
from repro.datasets.build import build_synthetic_database
from repro.index.diskmodel import DiskAccessCounter
from repro.index.rfs import RFSStructure

# The clustering package re-exports the ``kmeans`` *function*, which
# shadows the submodule attribute; fetch the modules themselves to
# patch their kernels.
kmeans_mod = import_module("repro.clustering.kmeans")
rfs_mod = import_module("repro.index.rfs")

TINY = os.environ.get("QD_BENCH_TINY") == "1"
SEED = 2006
WORKERS = 4
#: Simulated device latency per page read, charged to every node's
#: member fetch during representative selection on all timed legs
#: alike.  A random page read on the paper's 2006-era disks costs the
#: average seek (~9 ms) plus half a rotation (~4 ms at 7200 rpm).
PAGE_LATENCY_S = 0.015


def _params(tiny: bool) -> dict:
    if tiny:
        return dict(n_images=2_000, n_categories=30, min_speedup=1.2,
                    kmeans_k=200, min_kernel_speedup=1.15)
    return dict(n_images=15_000, n_categories=150, min_speedup=2.5,
                kmeans_k=150, min_kernel_speedup=1.3)


def _signature(rfs: RFSStructure) -> list:
    """Everything that defines a built structure, bit-for-bit."""
    out = []
    for node_id in sorted(rfs.nodes):
        node = rfs.nodes[node_id]
        out.append(
            (
                node_id,
                node.level,
                node.item_ids.tobytes(),
                tuple(node.representatives),
                node.mbr.lo.tobytes(),
                node.mbr.hi.tobytes(),
            )
        )
    return out


def _timed_build(features, build_cfg: BuildConfig):
    """Build with per-page latency charged; returns (seconds, rfs)."""
    io = DiskAccessCounter(page_read_latency_s=PAGE_LATENCY_S)
    start = time.perf_counter()
    rfs = RFSStructure.build(
        features, RFSConfig(), seed=SEED, io=io, build=build_cfg
    )
    return time.perf_counter() - start, rfs


def run_build_bench(tiny: bool) -> tuple[list[str], dict]:
    """Run every measurement; returns (report rows, metrics dict)."""
    p = _params(tiny)
    database = build_synthetic_database(
        p["n_images"], n_categories=p["n_categories"], seed=SEED
    )
    features = database.features

    # Pre-PR baseline: restore the naive Lloyd's kernels, serial build.
    with mock.patch.object(
        kmeans_mod, "_assign", kmeans_mod._assign_naive
    ), mock.patch.object(
        kmeans_mod, "_lloyd_update", kmeans_mod._lloyd_update_naive
    ), mock.patch.object(
        rfs_mod,
        "_nearest_candidates",
        rfs_mod._nearest_candidates_naive,
    ):
        naive_s, naive_rfs = _timed_build(
            features, BuildConfig(charge_io=True)
        )
    baseline_sig = _signature(naive_rfs)

    # Vectorized kernels, still one worker.
    serial_s, serial_rfs = _timed_build(
        features, BuildConfig(charge_io=True)
    )
    assert _signature(serial_rfs) == baseline_sig

    # Vectorized + the thread build executor overlapping page reads.
    thread_s, thread_rfs = _timed_build(
        features,
        BuildConfig(executor="thread", workers=WORKERS, charge_io=True),
    )
    assert _signature(thread_rfs) == baseline_sig

    # Process executor: parity check only (fork + pool startup noise
    # makes its wall time meaningless at bench scale).
    process_rfs = RFSStructure.build(
        features,
        RFSConfig(),
        seed=SEED,
        build=BuildConfig(executor="process", workers=WORKERS),
    )
    assert _signature(process_rfs) == baseline_sig

    # Kernel microbench at the scale the vectorization targets: one
    # paper-scale clustering call, no I/O model.  (The build's own
    # kmeans instances are leaf-sized, so the whole-build serial legs
    # above differ by only a few percent and are sleep-dominated.)
    kernel_naive_s, kernel_vec_s = _kmeans_kernel_times(
        features, p["kmeans_k"]
    )

    vec_speedup = naive_s / serial_s
    thread_speedup = naive_s / thread_s
    kernel_speedup = kernel_naive_s / kernel_vec_s
    scale = "tiny" if tiny else "full"
    rows = [
        f"Build pipeline: {p['n_images']} images, "
        f"{len(serial_rfs.nodes)} nodes, "
        f"{PAGE_LATENCY_S * 1000:.0f} ms/page ({scale})",
        f"  serial naive         {naive_s * 1000:8.1f} ms   1.00x",
        f"  serial vectorized    {serial_s * 1000:8.1f} ms   "
        f"{vec_speedup:.2f}x",
        f"  thread x {WORKERS}           {thread_s * 1000:8.1f} ms   "
        f"{thread_speedup:.2f}x   (bit-identical)",
        f"  kmeans kernels (k={p['kmeans_k']})   "
        f"{kernel_naive_s * 1000:6.1f} -> {kernel_vec_s * 1000:.1f} ms   "
        f"{kernel_speedup:.2f}x   (bit-identical)",
    ]
    metrics = {
        "vec_speedup": vec_speedup,
        "thread_speedup": thread_speedup,
        "kernel_speedup": kernel_speedup,
        "naive_s": naive_s,
        "serial_s": serial_s,
        "thread_s": thread_s,
        "min_speedup": p["min_speedup"],
        "min_kernel_speedup": p["min_kernel_speedup"],
    }
    return rows, metrics


def _bench_result(tiny: bool, metrics: dict) -> BenchResult:
    """The canonical ``BENCH_build_throughput.json`` record."""
    p = _params(tiny)
    result = BenchResult.new("build_throughput", {**p, "tiny": tiny})
    result.record(
        "thread_speedup", metrics["thread_speedup"], unit="x",
        higher_is_better=True,
    )
    result.record(
        "kernel_speedup", metrics["kernel_speedup"], unit="x",
        higher_is_better=True,
    )
    # The serial legs are sleep-dominated at bench scale, so their
    # ratio hovers around 1.0 — informational, never gating.
    result.record(
        "vec_speedup", metrics["vec_speedup"], unit="x",
        higher_is_better=True, compare=False,
    )
    for name in ("naive_s", "serial_s", "thread_s"):
        result.record(
            name, metrics[name], unit="s", higher_is_better=False,
            compare=False,
        )
    return result


def _kmeans_kernel_times(features, k: int) -> tuple[float, float]:
    """Best-of-3 naive vs vectorized time of one large clustering."""

    def timed() -> float:
        start = time.perf_counter()
        kmeans_mod.kmeans(features, k, seed=7, n_restarts=1, max_iter=15)
        return time.perf_counter() - start

    vec_s = min(timed() for _ in range(3))
    with mock.patch.object(
        kmeans_mod, "_assign", kmeans_mod._assign_naive
    ), mock.patch.object(
        kmeans_mod, "_lloyd_update", kmeans_mod._lloyd_update_naive
    ):
        naive_s = min(timed() for _ in range(3))
    return naive_s, vec_s


def _check(metrics: dict) -> None:
    # Acceptance: 4 workers beat the serial pre-PR baseline.
    assert metrics["thread_speedup"] >= metrics["min_speedup"]
    # The vectorized kernels must win clearly at the scale they target.
    assert metrics["kernel_speedup"] >= metrics["min_kernel_speedup"]
    # The whole-build serial legs are sleep-dominated (the build's own
    # kmeans instances are leaf-sized), so only guard against a real
    # regression, not sleep jitter.
    assert metrics["vec_speedup"] >= 0.9


def test_build_throughput(report, benchmark):
    rows, metrics = run_build_bench(TINY)
    report("\n".join(rows))
    _bench_result(TINY, metrics).write(
        os.path.join(os.path.dirname(__file__), "results")
    )
    benchmark.extra_info["thread_speedup"] = round(
        metrics["thread_speedup"], 2
    )
    benchmark.extra_info["vec_speedup"] = round(
        metrics["vec_speedup"], 2
    )
    benchmark.pedantic(
        lambda: None, rounds=1, iterations=1
    )  # timing captured manually above; keep the bench in the report
    _check(metrics)


def main(argv=None) -> int:
    parser = tiny_arg_parser(
        "Offline build throughput benchmark (fixture-free entry)"
    )
    args = parser.parse_args(argv)
    tiny = args.tiny or TINY_ENV
    rows, metrics = run_build_bench(tiny)
    emit(rows, _bench_result(tiny, metrics))
    _check(metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
