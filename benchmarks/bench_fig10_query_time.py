"""Figure 10 — overall query processing time vs database size.

The paper generates 100 random initial queries per database size, runs
two feedback rounds plus the final localized k-NN for each, and reports
the average overall processing time, which grows linearly with the
database size.  The sweep itself is shared with the Figure 11 bench via
the session-scoped ``scalability_result`` fixture; this bench times one
representative slice so pytest-benchmark has a timing sample.
"""

from repro.eval.experiments import run_scalability


def test_fig10_overall_query_time(benchmark, scalability_result, report):
    result = scalability_result
    # Give pytest-benchmark a real timing sample: one small re-run.
    benchmark.pedantic(
        lambda: run_scalability((2_000,), n_queries=10, seed=7),
        rounds=1,
        iterations=1,
    )
    report(result.format_figure10())
    r2 = result.linearity_r2()
    report(f"linear-fit R^2 (overall time vs size): {r2:.3f}")
    benchmark.extra_info["r2"] = round(r2, 3)
    benchmark.extra_info["times"] = [
        round(p.overall_query_time, 5) for p in result.points
    ]
    benchmark.extra_info["times_p95"] = [
        round(p.overall_query_time_p95, 5) for p in result.points
    ]
    # The p95 series (trace-derived) must bound the mean from above.
    for point in result.points:
        assert point.overall_query_time_p95 >= point.overall_query_time * 0.5

    # Paper shape: time increases with size, consistent with a linear
    # trend.
    times = [p.overall_query_time for p in result.points]
    assert times[-1] >= times[0]
    assert r2 > 0.7
