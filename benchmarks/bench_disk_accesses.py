"""§5.2.2 — simulated disk-access accounting.

The paper argues the QD/RFS approach is I/O-light: processing a round of
relevance feedback reads one tree node per active subquery (less when
several relevant representatives share a node), and each localized k-NN
computation usually reads a single leaf, expanding to parents only for
boundary queries.  This bench measures the page reads of full QD sessions
on the paper-scale database (result size 100 — a screenful-scale result,
as in the paper's efficiency study with simulated queries) and contrasts
them with the cost of traditional relevance feedback, which performs a
global k-NN over the whole index every round.
"""

import numpy as np

from repro.datasets.queryset import TABLE1_QUERIES
from repro.eval.protocol import run_qd_session
from repro.eval.reporting import format_table
from repro.index.rstar import RStarTree

RESULT_K = 100


def test_disk_accesses(benchmark, paper_engine, report):
    engine = paper_engine
    database = engine.database

    def measure():
        rows = []
        for query in TABLE1_QUERIES:
            result, _ = run_qd_session(
                engine, query, k=RESULT_K, seed=7
            )
            # Per-session disk accounting is propagated into the result
            # stats by the engine (no reaching into engine.io needed).
            rows.append(
                (
                    query.name,
                    int(result.stats.get("disk_reads_feedback", 0)),
                    int(result.stats.get("disk_reads_localized_knn", 0)),
                    result.n_groups,
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Cost of ONE global k-NN on an R*-tree over the same data — what a
    # traditional relevance-feedback technique pays every round.
    tree = RStarTree(dims=database.dims, max_entries=100,
                     min_entries=70, split_min_entries=40)
    tree.bulk_load(database.features, seed=0)
    tree.io.reset()
    tree.knn(database.features[0], RESULT_K)
    global_knn_reads = tree.io.physical_reads

    report(
        format_table(
            ["query", "feedback reads (3 rounds)",
             "localized k-NN reads", "subqueries"],
            rows,
            title=(
                "Disk accesses per QD session, k=100 (paper §5.2.2)"
            ),
        )
        + f"\none global R*-tree k-NN reads {global_knn_reads} pages; "
        "traditional relevance feedback pays that every round "
        f"(3 rounds = {3 * global_knn_reads} pages)"
    )
    feedback_reads = [r[1] for r in rows]
    knn_reads = [r[2] for r in rows]
    reads_per_subquery = [r[2] / max(1, r[3]) for r in rows]
    benchmark.extra_info["mean_feedback_reads"] = float(
        np.mean(feedback_reads)
    )
    benchmark.extra_info["mean_localized_knn_reads"] = float(
        np.mean(knn_reads)
    )
    benchmark.extra_info["mean_reads_per_subquery"] = float(
        np.mean(reads_per_subquery)
    )
    benchmark.extra_info["global_knn_reads"] = global_knn_reads

    # Paper shape: each localized k-NN *usually* reads about one page
    # (boundary queries legitimately expand — §3.3 — so the tail is
    # heavier than the median).
    assert float(np.median(reads_per_subquery)) <= 2.0
    # ... feedback processing touches a handful of nodes per session ...
    n_nodes = sum(1 for _ in engine.rfs.iter_nodes())
    assert max(feedback_reads) < n_nodes / 4
    # ... and a whole QD session costs less I/O than the three global
    # k-NN rounds traditional relevance feedback would execute.
    total_per_session = np.array(feedback_reads) + np.array(knn_reads)
    assert float(np.mean(total_per_session)) < 3 * global_knn_reads
