"""Ablation — RFS node capacity (§4: max 100 / min 70 → a 3-level tree).

The node capacity controls the breadth/depth trade-off of the RFS
structure: small nodes give deep trees (more feedback rounds needed to
reach pure leaves), huge nodes give a flat tree (leaves too coarse for
localized queries).  The sweep reports tree shape and retrieval quality
per capacity, with the paper's 100/70 as the reference point.
"""

import numpy as np

from repro.config import RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.queryset import get_query
from repro.eval.protocol import run_qd_session
from repro.eval.reporting import format_table

CAPACITIES = ((30, 15), (60, 30), (100, 70), (200, 100))
QUERIES = ("bird", "computer", "rose")


def test_ablation_node_capacity(benchmark, paper_db, report):
    def measure():
        rows = []
        for max_entries, min_entries in CAPACITIES:
            engine = QueryDecompositionEngine.build(
                paper_db,
                RFSConfig(
                    node_max_entries=max_entries,
                    node_min_entries=min_entries,
                ),
                seed=2006,
            )
            height = engine.rfs.height
            n_leaves = sum(
                1 for n in engine.rfs.iter_nodes() if n.is_leaf
            )
            precisions, gtirs = [], []
            for name in QUERIES:
                result, _ = run_qd_session(
                    engine, get_query(name), seed=41,
                    rounds=max(3, height),
                )
                precisions.append(result.stats["precision"])
                gtirs.append(result.stats["gtir"])
            rows.append(
                (
                    f"{max_entries}/{min_entries}",
                    height,
                    n_leaves,
                    float(np.mean(precisions)),
                    float(np.mean(gtirs)),
                )
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        format_table(
            ["capacity", "levels", "leaves", "precision", "GTIR"],
            rows,
            title="Ablation: RFS node capacity (paper: 100/70, 3 levels)",
        )
    )
    benchmark.extra_info["rows"] = rows

    by_capacity = {r[0]: r for r in rows}
    # The paper's configuration yields a 3-level tree at 15k images.
    assert by_capacity["100/70"][1] == 3
    # Quality stays strong at the paper's setting.
    assert by_capacity["100/70"][4] > 0.85
