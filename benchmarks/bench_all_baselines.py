"""Extension — QD against the full §2 baseline family.

The paper compares against Multiple Viewpoints only; this bench extends
Table 1's protocol to every surveyed technique (plain k-NN, Query Point
Movement, MARS multipoint, Qcluster, MV) on a representative subset of
queries, confirming the single-neighbourhood confinement is a property
of the whole k-NN family, not of MV specifically.
"""

import numpy as np

from repro.baselines import ALL_BASELINES
from repro.datasets.queryset import get_query
from repro.eval.protocol import run_baseline_session, run_qd_session
from repro.eval.reporting import format_table

QUERIES = ("person", "bird", "car", "computer", "rose")


def test_all_baselines(benchmark, paper_engine, report):
    engine = paper_engine
    database = engine.database

    def measure():
        scores = {}
        for cls in ALL_BASELINES:
            precisions, gtirs = [], []
            for name in QUERIES:
                technique = cls(database, seed=13)
                records = run_baseline_session(
                    technique, get_query(name), rounds=3, seed=13
                )
                precisions.append(records[-1].precision)
                gtirs.append(records[-1].gtir)
            scores[cls.name] = (
                float(np.mean(precisions)), float(np.mean(gtirs))
            )
        precisions, gtirs = [], []
        for name in QUERIES:
            result, _ = run_qd_session(
                engine, get_query(name), seed=13
            )
            precisions.append(result.stats["precision"])
            gtirs.append(result.stats["gtir"])
        scores["QD"] = (float(np.mean(precisions)), float(np.mean(gtirs)))
        return scores

    scores = benchmark.pedantic(measure, rounds=1, iterations=1)
    report(
        format_table(
            ["technique", "precision", "GTIR"],
            [(name, p, g) for name, (p, g) in scores.items()],
            title=(
                "QD vs the full k-NN baseline family "
                f"(mean over {len(QUERIES)} scattered queries)"
            ),
        )
    )
    for name, (precision, gtir_val) in scores.items():
        benchmark.extra_info[name] = (
            round(precision, 3), round(gtir_val, 3)
        )

    qd_precision, qd_gtir = scores["QD"]
    for name, (precision, gtir_val) in scores.items():
        if name == "QD":
            continue
        assert qd_precision > precision, name
        assert qd_gtir >= gtir_val, name
