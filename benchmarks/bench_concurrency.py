"""Extension — concurrent-user server capacity (§5.2.2 / §6 claims).

"The results indicate that the QD approach is very time efficient,
suitable for very large databases with many concurrent users" (§5.2.2)
and the §6 claim that client-side feedback leaves the server "mainly to
retrieve the final query results for the small localized queries".

This bench replays a Zipf-skewed 60-session workload against the
paper-scale database, charging each deployment model's *server-side*
work: QD pays only the final localized k-NNs; a traditional deployment
pays one global k-NN per feedback round per session.
"""

from repro.config import QDConfig
from repro.core.engine import QueryDecompositionEngine
from repro.eval.workload import (
    WorkloadSpec,
    generate_workload,
    simulate_concurrent_users,
)


def test_concurrent_user_capacity(benchmark, paper_engine, report):
    engine = paper_engine
    workload = generate_workload(
        engine.database,
        WorkloadSpec(n_queries=60, max_targets=3, zipf_s=1.0),
        seed=2006,
    )

    result = benchmark.pedantic(
        lambda: simulate_concurrent_users(
            engine, workload, seed=2006
        ),
        rounds=1,
        iterations=1,
    )
    report(result.format())
    benchmark.extra_info["throughput_multiplier"] = round(
        result.throughput_multiplier, 1
    )
    benchmark.extra_info["sessions"] = result.n_sessions

    assert result.n_sessions >= 40  # most workload queries complete
    # The server sustains several times more QD sessions.
    assert result.throughput_multiplier > 3
    assert (
        result.qd_server_page_reads
        < result.traditional_server_page_reads
    )


def test_concurrent_user_capacity_threaded(
    benchmark, paper_engine, report
):
    """Same workload replayed through the thread-pool executor.

    The executor changes where the final-round subqueries run, not what
    they compute — so session counts and page-read accounting must match
    the serial replay exactly, at full workload scale.
    """
    serial_engine = paper_engine
    threaded_engine = QueryDecompositionEngine(
        serial_engine.database,
        serial_engine.rfs,
        QDConfig(executor="thread", workers=4),
    )
    workload = generate_workload(
        serial_engine.database,
        WorkloadSpec(n_queries=60, max_targets=3, zipf_s=1.0),
        seed=2006,
    )

    serial_result = simulate_concurrent_users(
        serial_engine, workload, seed=2006
    )
    with threaded_engine:
        threaded_result = benchmark.pedantic(
            lambda: simulate_concurrent_users(
                threaded_engine, workload, seed=2006
            ),
            rounds=1,
            iterations=1,
        )
    report(
        "Threaded replay parity: "
        f"{threaded_result.n_sessions} sessions, "
        f"{threaded_result.qd_server_page_reads} page reads "
        f"(serial: {serial_result.qd_server_page_reads})"
    )
    assert threaded_result.n_sessions == serial_result.n_sessions
    assert (
        threaded_result.qd_server_page_reads
        == serial_result.qd_server_page_reads
    )
    assert threaded_result.throughput_multiplier > 3
