"""Extension — concurrent-user server capacity (§5.2.2 / §6 claims).

"The results indicate that the QD approach is very time efficient,
suitable for very large databases with many concurrent users" (§5.2.2)
and the §6 claim that client-side feedback leaves the server "mainly to
retrieve the final query results for the small localized queries".

This bench replays a Zipf-skewed 60-session workload against the
paper-scale database, charging each deployment model's *server-side*
work: QD pays only the final localized k-NNs; a traditional deployment
pays one global k-NN per feedback round per session.
"""

from repro.eval.workload import (
    WorkloadSpec,
    generate_workload,
    simulate_concurrent_users,
)


def test_concurrent_user_capacity(benchmark, paper_engine, report):
    engine = paper_engine
    workload = generate_workload(
        engine.database,
        WorkloadSpec(n_queries=60, max_targets=3, zipf_s=1.0),
        seed=2006,
    )

    result = benchmark.pedantic(
        lambda: simulate_concurrent_users(
            engine, workload, seed=2006
        ),
        rounds=1,
        iterations=1,
    )
    report(result.format())
    benchmark.extra_info["throughput_multiplier"] = round(
        result.throughput_multiplier, 1
    )
    benchmark.extra_info["sessions"] = result.n_sessions

    assert result.n_sessions >= 40  # most workload queries complete
    # The server sustains several times more QD sessions.
    assert result.throughput_multiplier > 3
    assert (
        result.qd_server_page_reads
        < result.traditional_server_page_reads
    )
