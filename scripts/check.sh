#!/usr/bin/env bash
# Pre-merge gate: lint (ruff) + the tier-1 test suite.
#
# Usage: scripts/check.sh [--cov] [extra pytest args...]
#
#   --cov   run pytest with coverage (pytest-cov) and, when running in a
#           GitHub Actions job, append the coverage table to the
#           workflow's step summary.
#
# Locally, missing tools degrade to a skip with a warning; under CI=1
# (set by the workflow) a missing tool is a hard failure, so the gate
# can never silently go soft on CI.
set -euo pipefail

cd "$(dirname "$0")/.."

WITH_COV=0
if [[ "${1:-}" == "--cov" ]]; then
    WITH_COV=1
    shift
fi

if command -v ruff >/dev/null 2>&1; then
    echo "== ruff =="
    ruff check src tests benchmarks
elif python -c "import ruff" >/dev/null 2>&1; then
    echo "== ruff (module) =="
    python -m ruff check src tests benchmarks
elif [[ "${CI:-}" == "1" ]]; then
    echo "== ruff not installed but CI=1; failing ==" >&2
    exit 1
else
    echo "== ruff not installed; skipping lint =="
fi

PYTEST_ARGS=(-x -q)
if [[ "$WITH_COV" == "1" ]]; then
    if python -c "import pytest_cov" >/dev/null 2>&1; then
        PYTEST_ARGS+=(--cov=repro --cov-report=term)
    elif [[ "${CI:-}" == "1" ]]; then
        echo "== pytest-cov not installed but CI=1; failing ==" >&2
        exit 1
    else
        echo "== pytest-cov not installed; running without coverage =="
        WITH_COV=0
    fi
fi

echo "== pytest (tier 1) =="
if [[ "$WITH_COV" == "1" && -n "${GITHUB_STEP_SUMMARY:-}" ]]; then
    PYTHONPATH=src python -m pytest "${PYTEST_ARGS[@]}" "$@" \
        | tee /tmp/qd-check-pytest.log
    {
        echo '### Coverage'
        echo '```'
        sed -n '/^---------- coverage/,/^TOTAL/p' /tmp/qd-check-pytest.log
        echo '```'
    } >> "$GITHUB_STEP_SUMMARY"
else
    PYTHONPATH=src python -m pytest "${PYTEST_ARGS[@]}" "$@"
fi

# The feature-store roundtrip tests guard the on-disk format; they must
# actually run (a skip — e.g. a collection filter or a platform guard
# someone adds later — would let format breaks through silently).
echo "== store roundtrip gate =="
ROUNDTRIP_LOG=/tmp/qd-check-roundtrip.log
PYTHONPATH=src python -m pytest tests/test_store.py -k Roundtrip \
    -q -rs | tee "$ROUNDTRIP_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$ROUNDTRIP_LOG"; then
    echo "== no store roundtrip test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$ROUNDTRIP_LOG"; then
    echo "== store roundtrip tests were skipped; failing ==" >&2
    exit 1
fi

# The cache-invalidation tests guard the staleness contract (a cached
# subquery served across an incremental mutation or a store swap would
# silently corrupt rankings); like the roundtrip gate, they must run.
echo "== cache invalidation gate =="
INVALIDATION_LOG=/tmp/qd-check-invalidation.log
PYTHONPATH=src python -m pytest tests/test_cache.py -k Invalidation \
    -q -rs | tee "$INVALIDATION_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$INVALIDATION_LOG"; then
    echo "== no cache invalidation test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$INVALIDATION_LOG"; then
    echo "== cache invalidation tests were skipped; failing ==" >&2
    exit 1
fi

# The build-parity tests guard the offline pipeline's core contract (a
# parallel build must be bit-identical to the serial one — node ids,
# members, boxes, representatives); like the gates above, they must
# actually run, not be skipped away.
echo "== build parity gate =="
PARITY_LOG=/tmp/qd-check-build-parity.log
PYTHONPATH=src python -m pytest tests/test_build_parallel.py -k Parity \
    -q -rs | tee "$PARITY_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$PARITY_LOG"; then
    echo "== no build parity test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$PARITY_LOG"; then
    echo "== build parity tests were skipped; failing ==" >&2
    exit 1
fi

# The session-resume parity tests guard the externalized-state contract
# (a session checkpointed after any round and resumed — even by a fresh
# process — must continue bit-identically, for every store backend and
# executor); like the gates above, they must actually run.
echo "== session resume gate =="
RESUME_LOG=/tmp/qd-check-session-resume.log
PYTHONPATH=src python -m pytest tests/test_sessionstore.py -k Parity \
    -q -rs | tee "$RESUME_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$RESUME_LOG"; then
    echo "== no session resume test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$RESUME_LOG"; then
    echo "== session resume tests were skipped; failing ==" >&2
    exit 1
fi

# The quantized-parity tests guard the compressed scan tiers' core
# contract (f16/int8 rankings bit-identical to pure float32 across
# executors, backings, and cached reruns); like the gates above, they
# must actually run, not be skipped away.
echo "== quantized parity gate =="
QUANT_LOG=/tmp/qd-check-quantized-parity.log
PYTHONPATH=src python -m pytest tests/test_store_quantized.py -k Parity \
    -q -rs | tee "$QUANT_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$QUANT_LOG"; then
    echo "== no quantized parity test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$QUANT_LOG"; then
    echo "== quantized parity tests were skipped; failing ==" >&2
    exit 1
fi

# The sharded-parity tests guard the scatter-gather contract (rankings
# from a sharded router bit-identical to single-node for every shard
# count, partition strategy, executor, store backing, and cache state,
# including sessions resumed across routers with different shard
# counts); like the gates above, they must actually run.
echo "== sharded parity gate =="
SHARD_LOG=/tmp/qd-check-shard-parity.log
PYTHONPATH=src python -m pytest tests/test_shard.py -k Parity \
    -q -rs | tee "$SHARD_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$SHARD_LOG"; then
    echo "== no sharded parity test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$SHARD_LOG"; then
    echo "== sharded parity tests were skipped; failing ==" >&2
    exit 1
fi

# The mutation-parity tests guard the generational delta contract
# (rankings over main + delta bit-identical to a from-scratch rebuild
# of the same item set, across executors, store tiers, shard counts,
# and pre/post-compaction cache states); like the gates above, they
# must actually run, not be skipped away.
echo "== mutation parity gate =="
MUTATION_LOG=/tmp/qd-check-mutation-parity.log
PYTHONPATH=src python -m pytest tests/test_generations.py -k Parity \
    -q -rs | tee "$MUTATION_LOG"
if ! grep -qE '[1-9][0-9]* passed' "$MUTATION_LOG"; then
    echo "== no mutation parity test ran; failing ==" >&2
    exit 1
fi
if grep -qE '[1-9][0-9]* skipped' "$MUTATION_LOG"; then
    echo "== mutation parity tests were skipped; failing ==" >&2
    exit 1
fi
