#!/usr/bin/env python
"""Diff current BENCH_*.json results against a committed baseline.

The CI regression gate::

    PYTHONPATH=src python scripts/bench_compare.py \
        --baseline benchmarks/baselines --current benchmarks/results

Exit status 0 when every comparable metric is within the noise gate,
1 on any regression (including a baseline bench or gated metric missing
from the current results), 2 on schema/usage errors.

The comparison is noise-aware (see :mod:`repro.obs.bench`): a metric
regresses only when it moves in its bad direction by more than
``--rel-threshold`` *relative* AND more than ``--min-abs`` *absolute*,
and only dimensionless ratio metrics (``compare: true`` in the record)
gate by default — raw wall times are machine-dependent and are skipped
unless ``--include-times`` is given or the machine fingerprints match.

``--validate-only`` just schema-checks every ``BENCH_*.json`` under
``--current`` (used by CI before uploading artifacts).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

# Allow running from a repo checkout without installing the package.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.bench import (  # noqa: E402
    DEFAULT_MIN_ABS,
    DEFAULT_REL_THRESHOLD,
    BenchSchemaError,
    compare_dirs,
    format_comparison,
    load_bench_dir,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default="benchmarks/baselines",
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        default="benchmarks/results",
        help="directory of freshly produced BENCH_*.json files",
    )
    parser.add_argument(
        "--rel-threshold",
        type=float,
        default=DEFAULT_REL_THRESHOLD,
        help="relative bad-direction change that counts as a regression "
        f"(default {DEFAULT_REL_THRESHOLD})",
    )
    parser.add_argument(
        "--min-abs",
        type=float,
        default=DEFAULT_MIN_ABS,
        help="absolute-delta noise floor below which no change gates "
        f"(default {DEFAULT_MIN_ABS})",
    )
    parser.add_argument(
        "--include-times",
        action="store_true",
        help="also gate machine-dependent raw-time metrics "
        "(compare: false)",
    )
    parser.add_argument(
        "--validate-only",
        action="store_true",
        help="only schema-validate the --current directory, no diff",
    )
    args = parser.parse_args(argv)

    try:
        currents = load_bench_dir(args.current)
    except BenchSchemaError as exc:
        print(f"SCHEMA ERROR: {exc}", file=sys.stderr)
        return 2
    if args.validate_only:
        if not currents:
            print(
                f"no BENCH_*.json found under {args.current}",
                file=sys.stderr,
            )
            return 2
        for name, result in sorted(currents.items()):
            print(
                f"ok  BENCH_{name}.json  "
                f"({len(result.metrics)} metrics, sha "
                f"{result.git_sha[:12]})"
            )
        return 0

    if not Path(args.baseline).is_dir():
        print(
            f"baseline directory {args.baseline} does not exist",
            file=sys.stderr,
        )
        return 2
    try:
        deltas, missing = compare_dirs(
            args.baseline,
            args.current,
            rel_threshold=args.rel_threshold,
            min_abs=args.min_abs,
            include_times=args.include_times,
        )
    except BenchSchemaError as exc:
        print(f"SCHEMA ERROR: {exc}", file=sys.stderr)
        return 2

    print(format_comparison(deltas, missing))
    n_regressions = sum(d.regression for d in deltas) + len(missing)
    if n_regressions:
        print(
            f"\nFAIL: {n_regressions} regression(s) vs "
            f"{args.baseline}",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: {len(deltas)} metric(s) within the noise gate")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
