"""Tests for the R*-tree: inserts, splits, bulk load, k-NN, invariants."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EmptyIndexError
from repro.index.geometry import MBR
from repro.index.rstar import RStarTree


def brute_knn(points, query, k):
    dists = np.linalg.norm(points - query, axis=1)
    order = np.argsort(dists, kind="stable")[:k]
    return sorted(
        (float(dists[i]), int(i)) for i in order
    )


def assert_knn_equal(got, truth):
    """Same neighbour ids; distances equal to float tolerance."""
    assert sorted(i for _, i in got) == sorted(i for _, i in truth)
    assert np.allclose(
        sorted(d for d, _ in got), sorted(d for d, _ in truth)
    )


class TestConstruction:
    def test_invalid_dims(self):
        with pytest.raises(ConfigurationError):
            RStarTree(dims=0)

    def test_invalid_max_entries(self):
        with pytest.raises(ConfigurationError):
            RStarTree(dims=2, max_entries=3)

    def test_invalid_reinsert_fraction(self):
        with pytest.raises(ConfigurationError):
            RStarTree(dims=2, reinsert_fraction=1.0)

    def test_invalid_split_min(self):
        with pytest.raises(ConfigurationError):
            RStarTree(dims=2, max_entries=8, split_min_entries=6)

    def test_empty_tree(self):
        tree = RStarTree(dims=2)
        assert len(tree) == 0
        assert tree.height == 1


class TestInsert:
    def test_insert_grows_size(self, rng):
        tree = RStarTree(dims=3, max_entries=5)
        for i in range(20):
            tree.insert(rng.random(3), i)
        assert len(tree) == 20

    def test_wrong_dim_rejected(self):
        tree = RStarTree(dims=3)
        with pytest.raises(ConfigurationError):
            tree.insert(np.zeros(2), 0)

    def test_invariants_after_many_inserts(self, rng):
        tree = RStarTree(dims=4, max_entries=6)
        for i in range(300):
            tree.insert(rng.normal(size=4), i)
        tree.validate()
        assert tree.height >= 3

    def test_duplicate_points(self, rng):
        tree = RStarTree(dims=2, max_entries=4)
        for i in range(30):
            tree.insert(np.array([1.0, 1.0]), i)
        tree.validate()
        assert len(tree) == 30

    def test_clustered_data(self, rng):
        tree = RStarTree(dims=2, max_entries=8)
        idx = 0
        for cx in (0, 100, 200):
            for _ in range(40):
                tree.insert(rng.normal(cx, 1.0, size=2), idx)
                idx += 1
        tree.validate()

    def test_root_split_creates_new_root(self, rng):
        tree = RStarTree(dims=2, max_entries=4)
        for i in range(5):
            tree.insert(rng.random(2), i)
        assert tree.height == 2
        tree.validate()


class TestKnn:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force_after_inserts(self, seed):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(250, 3))
        tree = RStarTree(dims=3, max_entries=8)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        query = rng.normal(size=3)
        assert_knn_equal(tree.knn(query, 7), brute_knn(pts, query, 7))

    def test_matches_brute_force_after_bulk_load(self, rng):
        pts = rng.normal(size=(500, 5))
        tree = RStarTree(dims=5, max_entries=16)
        tree.bulk_load(pts, seed=0)
        query = rng.normal(size=5)
        assert_knn_equal(tree.knn(query, 10), brute_knn(pts, query, 10))

    def test_k_larger_than_n(self, rng):
        pts = rng.random((5, 2))
        tree = RStarTree(dims=2, max_entries=4)
        tree.bulk_load(pts)
        assert len(tree.knn(np.zeros(2), 10)) == 5

    def test_empty_tree_raises(self):
        with pytest.raises(EmptyIndexError):
            RStarTree(dims=2).knn(np.zeros(2), 1)

    def test_invalid_k(self, rng):
        tree = RStarTree(dims=2)
        tree.bulk_load(rng.random((5, 2)))
        with pytest.raises(ConfigurationError):
            tree.knn(np.zeros(2), 0)

    def test_filter_fn(self, rng):
        pts = rng.random((50, 2))
        tree = RStarTree(dims=2, max_entries=8)
        tree.bulk_load(pts)
        got = tree.knn(np.zeros(2), 5, filter_fn=lambda i: i % 2 == 0)
        assert all(i % 2 == 0 for _, i in got)

    def test_counts_io(self, rng):
        tree = RStarTree(dims=2, max_entries=8)
        tree.bulk_load(rng.random((100, 2)))
        tree.io.reset()
        tree.knn(np.zeros(2), 3, io_category="probe")
        assert tree.io.per_category.get("probe", 0) >= 1

    def test_results_sorted_by_distance(self, rng):
        tree = RStarTree(dims=3, max_entries=8)
        tree.bulk_load(rng.normal(size=(200, 3)))
        got = tree.knn(np.zeros(3), 12)
        dists = [d for d, _ in got]
        assert dists == sorted(dists)


class TestRangeSearch:
    def test_finds_exactly_box_members(self, rng):
        pts = rng.random((200, 2))
        tree = RStarTree(dims=2, max_entries=8)
        tree.bulk_load(pts)
        query = MBR(np.array([0.25, 0.25]), np.array([0.5, 0.5]))
        got = set(tree.range_search(query))
        truth = {
            i for i, p in enumerate(pts)
            if query.contains_point(p)
        }
        assert got == truth

    def test_empty_tree_returns_empty(self):
        tree = RStarTree(dims=2)
        query = MBR(np.zeros(2), np.ones(2))
        assert tree.range_search(query) == []


class TestBulkLoad:
    def test_sizes_and_invariants(self, rng):
        tree = RStarTree(dims=6, max_entries=10)
        tree.bulk_load(rng.normal(size=(333, 6)), seed=1)
        assert len(tree) == 333
        tree.validate()

    def test_respects_node_capacity(self, rng):
        tree = RStarTree(dims=3, max_entries=12)
        tree.bulk_load(rng.normal(size=(500, 3)), seed=2)
        for node in tree.iter_nodes():
            assert len(node.entries) <= 12

    def test_custom_item_ids(self, rng):
        tree = RStarTree(dims=2, max_entries=8)
        ids = [100 + i for i in range(20)]
        tree.bulk_load(rng.random((20, 2)), item_ids=ids)
        got = {i for _, i in tree.knn(np.zeros(2), 20)}
        assert got == set(ids)

    def test_id_length_mismatch_rejected(self, rng):
        tree = RStarTree(dims=2)
        with pytest.raises(ConfigurationError):
            tree.bulk_load(rng.random((5, 2)), item_ids=[1, 2])

    def test_zero_points_rejected(self):
        tree = RStarTree(dims=2)
        with pytest.raises(ConfigurationError):
            tree.bulk_load(np.empty((0, 2)))

    def test_wrong_dims_rejected(self, rng):
        tree = RStarTree(dims=3)
        with pytest.raises(ConfigurationError):
            tree.bulk_load(rng.random((5, 2)))

    def test_single_point(self):
        tree = RStarTree(dims=2)
        tree.bulk_load(np.array([[0.5, 0.5]]))
        assert len(tree) == 1
        assert tree.height == 1

    def test_separates_natural_clusters(self, rng):
        """Two far-apart blobs should not share a leaf."""
        a = rng.normal(0, 0.5, size=(40, 2))
        b = rng.normal(100, 0.5, size=(40, 2))
        tree = RStarTree(dims=2, max_entries=50, split_min_entries=20)
        tree.bulk_load(np.vstack([a, b]), seed=3)
        for leaf in tree.iter_leaves():
            ids = [e.item_id for e in leaf.entries]
            sides = {0 if i < 40 else 1 for i in ids}
            assert len(sides) == 1

    def test_deterministic_under_seed(self, rng):
        pts = rng.normal(size=(200, 4))
        t1 = RStarTree(dims=4, max_entries=10)
        t1.bulk_load(pts, seed=5)
        t2 = RStarTree(dims=4, max_entries=10)
        t2.bulk_load(pts, seed=5)
        leaves1 = sorted(
            tuple(sorted(e.item_id for e in leaf.entries))
            for leaf in t1.iter_leaves()
        )
        leaves2 = sorted(
            tuple(sorted(e.item_id for e in leaf.entries))
            for leaf in t2.iter_leaves()
        )
        assert leaves1 == leaves2


class TestHighDimensional:
    def test_37d_paper_configuration(self, rng):
        """The paper's setting: 37-d features, 100/70 node capacity."""
        pts = rng.normal(size=(2000, 37))
        tree = RStarTree(
            dims=37, max_entries=100, min_entries=70,
            split_min_entries=40,
        )
        tree.bulk_load(pts, seed=0)
        tree.validate()
        assert tree.height >= 2
        query = rng.normal(size=37)
        assert_knn_equal(tree.knn(query, 5), brute_knn(pts, query, 5))
