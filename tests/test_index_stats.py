"""Tests for RFS structural statistics."""

import numpy as np
import pytest

from repro.index.stats import compute_tree_stats


class TestTreeStats:
    @pytest.fixture(scope="class")
    def stats(self, rfs, rendered_db):
        return compute_tree_stats(rfs, labels=rendered_db.labels)

    def test_counts_match_structure(self, stats, rfs):
        assert stats.n_images == rfs.root.size
        assert stats.n_nodes == len(rfs.nodes)
        assert stats.height == rfs.height

    def test_level_sizes_partition(self, stats):
        """Each level's node sizes sum to the whole database (every
        image appears exactly once per level it spans)."""
        for lv in stats.levels:
            total = lv.n_nodes * lv.mean_size
            if lv.level == stats.levels[0].level:  # root level
                assert total == pytest.approx(stats.n_images)

    def test_root_level_is_first(self, stats):
        assert stats.levels[0].n_nodes == 1
        assert stats.levels[0].level == stats.height - 1

    def test_leaf_level_present(self, stats):
        assert stats.levels[-1].level == 0
        assert stats.levels[-1].n_nodes > 1

    def test_representatives_counted(self, stats):
        for lv in stats.levels:
            assert lv.mean_representatives >= 1.0

    def test_purity_meaningful(self, stats):
        """The rendered categories cluster well → high leaf purity."""
        assert stats.label_purity is not None
        assert 0.4 < stats.label_purity <= 1.0

    def test_purity_optional(self, rfs):
        stats = compute_tree_stats(rfs)
        assert stats.label_purity is None

    def test_min_max_bounds(self, stats):
        for lv in stats.levels:
            assert lv.min_size <= lv.mean_size <= lv.max_size

    def test_format(self, stats):
        text = stats.format()
        assert "height" in text
        assert "purity" in text
        assert str(stats.n_images) in text

    def test_overlap_nonnegative(self, stats):
        for lv in stats.levels:
            assert lv.mean_sibling_overlap >= 0.0

    def test_synthetic_random_data_lower_purity(self):
        """Unstructured labels give low purity — the metric
        discriminates."""
        from repro.config import RFSConfig
        from repro.index.rfs import RFSStructure

        rng = np.random.default_rng(0)
        feats = rng.normal(size=(400, 8))
        labels = rng.integers(0, 20, size=400)
        rfs = RFSStructure.build(
            feats, RFSConfig(node_max_entries=40, node_min_entries=20),
            seed=0,
        )
        stats = compute_tree_stats(rfs, labels=labels)
        assert stats.label_purity < 0.4
