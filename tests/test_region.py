"""Tests for region-of-interest (contour) feature extraction."""

import numpy as np
import pytest

from repro.errors import InvalidImageError
from repro.features import FeatureExtractor
from repro.features.region import contour_mask, extract_region_features
from repro.imaging.canvas import Canvas
from repro.imaging.scenes import render_scene


def _square_mask(size=32, lo=0.25, hi=0.75):
    return contour_mask(size, [(lo, lo), (hi, lo), (hi, hi), (lo, hi)])


class TestContourMask:
    def test_square_contour_selects_square(self):
        mask = _square_mask(32)
        assert mask[16, 16]
        assert not mask[0, 0]
        # Roughly a quarter of the canvas.
        assert 0.15 < mask.mean() < 0.35

    def test_matches_canvas_rasteriser(self):
        pts = [(0.2, 0.8), (0.8, 0.8), (0.5, 0.2)]
        mask = contour_mask(32, pts)
        img = Canvas(32).polygon(pts, (1, 1, 1)).image()
        assert np.array_equal(mask, img[..., 0] == 1.0)

    def test_too_few_points_rejected(self):
        with pytest.raises(InvalidImageError):
            contour_mask(32, [(0, 0), (1, 1)])

    def test_degenerate_contour_empty(self):
        mask = contour_mask(
            32, [(0.5, 0.5), (0.5, 0.5), (0.5, 0.5)]
        )
        assert not mask.any()


class TestRegionFeatures:
    def test_output_dims(self):
        img = render_scene("rose_red", 32, np.random.default_rng(0))
        feats = extract_region_features(img, _square_mask())
        assert feats.shape == (37,)
        assert np.isfinite(feats).all()

    def test_full_mask_color_equals_global(self):
        img = render_scene("rose_red", 32, np.random.default_rng(0))
        full = np.ones((32, 32), dtype=bool)
        regional = extract_region_features(img, full)
        global_feats = FeatureExtractor().extract(img)
        assert np.allclose(regional[:9], global_feats[:9])

    def test_mask_suppresses_background(self):
        """A red object on a blue background: the masked colour moments
        see red, the global ones see mostly blue."""
        img = Canvas(32, background=(0.0, 0.0, 1.0)).rectangle(
            0.3, 0.3, 0.7, 0.7, (1.0, 0.0, 0.0)
        ).image()
        mask = _square_mask(32, 0.3, 0.7)
        regional = extract_region_features(img, mask)
        global_feats = FeatureExtractor().extract(img)
        # HSV value mean is comparable, but hue means differ strongly:
        # red hue ~0, blue hue ~0.66.
        assert regional[0] < 0.1
        assert global_feats[0] > 0.3

    def test_background_change_invariance(self):
        """The point of the extension: the same object on different
        backgrounds yields (nearly) the same region features."""
        def scene(background):
            return Canvas(32, background=background).ellipse(
                0.5, 0.5, 0.2, 0.15, (0.9, 0.8, 0.1)
            ).image()

        # A tight 12-point contour traced just inside the object edge,
        # as a user outlining the object would draw it.
        angles = np.linspace(0, 2 * np.pi, 12, endpoint=False)
        contour = [
            (0.5 + 0.19 * np.cos(t), 0.5 + 0.14 * np.sin(t))
            for t in angles
        ]
        mask = contour_mask(32, contour)
        a = extract_region_features(scene((0.0, 0.0, 1.0)), mask)
        b = extract_region_features(scene((0.1, 0.5, 0.1)), mask)
        full_a = FeatureExtractor().extract(scene((0.0, 0.0, 1.0)))
        full_b = FeatureExtractor().extract(scene((0.1, 0.5, 0.1)))
        regional_gap = np.linalg.norm(a - b)
        global_gap = np.linalg.norm(full_a - full_b)
        assert regional_gap < 0.3 * global_gap

    def test_shape_mismatch_rejected(self):
        img = np.zeros((32, 32, 3))
        with pytest.raises(InvalidImageError):
            extract_region_features(img, np.ones((16, 16), dtype=bool))

    def test_tiny_region_rejected(self):
        img = np.zeros((32, 32, 3))
        mask = np.zeros((32, 32), dtype=bool)
        mask[0, 0] = True
        with pytest.raises(InvalidImageError):
            extract_region_features(img, mask)

    def test_flat_region_zero_texture(self):
        img = np.full((32, 32, 3), 0.5)
        feats = extract_region_features(img, _square_mask())
        # Texture block (dims 9..18) vanishes for a flat field.
        assert np.allclose(feats[9:19], 0.0, atol=1e-9)
