"""Tests for the dataset layer: concepts, queryset, database, builders."""

import numpy as np
import pytest

from repro.config import DatasetConfig
from repro.datasets.build import (
    allocate_counts,
    build_rendered_database,
    build_synthetic_database,
)
from repro.datasets.concepts import (
    NAMED_CATEGORY_ORDER,
    build_category_registry,
    distractor_categories,
    named_categories,
)
from repro.datasets.database import ImageDatabase
from repro.datasets.queryset import (
    TABLE1_QUERIES,
    get_query,
    query_names,
)
from repro.errors import DatasetError, UnknownConceptError
from repro.features.normalize import FeatureNormalizer


class TestConcepts:
    def test_27_named_categories(self):
        assert len(named_categories()) == 27
        assert len(NAMED_CATEGORY_ORDER) == 27

    def test_named_categories_render(self, rng):
        for spec in named_categories()[:5]:
            img = spec.render(32, rng)
            assert img.shape == (32, 32, 3)

    def test_registry_size(self):
        registry = build_category_registry(150)
        assert len(registry) == 150
        assert sum(1 for c in registry if not c.is_distractor) == 27

    def test_registry_too_small_rejected(self):
        with pytest.raises(DatasetError):
            build_category_registry(10)

    def test_registry_names_unique(self):
        registry = build_category_registry(100)
        names = [c.name for c in registry]
        assert len(set(names)) == len(names)

    def test_registry_deterministic(self):
        a = [c.name for c in build_category_registry(60, seed=5)]
        b = [c.name for c in build_category_registry(60, seed=5)]
        assert a == b

    def test_distractor_negative_count_rejected(self):
        with pytest.raises(DatasetError):
            distractor_categories(-1, seed=0)


class TestQuerySet:
    def test_eleven_queries(self):
        assert len(TABLE1_QUERIES) == 11

    def test_paper_subconcept_counts(self):
        """Subconcept counts exactly as Table 1 lists them."""
        expected = {
            "person": 3, "airplane": 2, "bird": 3, "car": 3,
            "horse": 3, "mountain": 2, "rose": 2, "water_sports": 2,
            "computer": 3, "personal_computer": 2, "laptop": 2,
        }
        for query in TABLE1_QUERIES:
            assert query.n_subconcepts == expected[query.name]

    def test_all_categories_are_named_categories(self):
        named = set(NAMED_CATEGORY_ORDER)
        for query in TABLE1_QUERIES:
            assert query.relevant_categories() <= named

    def test_sedan_poses_under_modern_sedan(self):
        car = get_query("car")
        sub = car.subconcept_of_category("sedan_front")
        assert sub is not None and sub.name == "modern sedan"

    def test_laptop_categories_shared_between_queries(self):
        for name in ("computer", "personal_computer", "laptop"):
            assert "laptop_clear" in get_query(name).relevant_categories()

    def test_subconcept_of_unrelated_category_is_none(self):
        assert get_query("bird").subconcept_of_category(
            "rose_red"
        ) is None

    def test_get_query_unknown_raises(self):
        with pytest.raises(UnknownConceptError):
            get_query("unicorn")

    def test_query_names_order(self):
        assert query_names()[0] == "person"
        assert len(query_names()) == 11


class TestAllocateCounts:
    def test_sums_to_total(self, rng):
        counts = allocate_counts(1000, 13, rng)
        assert counts.sum() == 1000

    def test_minimum_four_per_category(self, rng):
        counts = allocate_counts(200, 40, rng)
        assert counts.min() >= 4

    def test_too_small_total_rejected(self, rng):
        with pytest.raises(DatasetError):
            allocate_counts(10, 40, rng)

    def test_zero_groups_rejected(self, rng):
        with pytest.raises(DatasetError):
            allocate_counts(10, 0, rng)


class TestRenderedDatabase:
    def test_shapes(self, rendered_db):
        assert rendered_db.features.shape == (rendered_db.size, 37)
        assert rendered_db.labels.shape == (rendered_db.size,)
        assert len(rendered_db.category_names) == 40

    def test_features_normalised(self, rendered_db):
        means = rendered_db.features.mean(axis=0)
        stds = rendered_db.features.std(axis=0)
        assert np.allclose(means, 0.0, atol=1e-9)
        assert np.all(stds <= 1.01)

    def test_every_category_present(self, rendered_db):
        present = set(np.unique(rendered_db.labels).tolist())
        assert present == set(range(40))

    def test_named_categories_first(self, rendered_db):
        assert rendered_db.category_names[:27] == list(
            NAMED_CATEGORY_ORDER
        )

    def test_deterministic_in_seed(self):
        cfg = DatasetConfig(total_images=200, n_categories=30, seed=4)
        a = build_rendered_database(cfg)
        b = build_rendered_database(cfg)
        assert np.allclose(a.features, b.features)
        assert np.array_equal(a.labels, b.labels)

    def test_image_size_mismatch_rejected(self):
        from repro.config import FeatureConfig

        with pytest.raises(DatasetError):
            build_rendered_database(
                DatasetConfig(total_images=150, n_categories=30,
                              image_size=32),
                feature_config=FeatureConfig(image_size=64),
            )


class TestSyntheticDatabase:
    def test_shapes(self, synthetic_db):
        assert synthetic_db.size == 900
        assert synthetic_db.dims == 37
        assert len(synthetic_db.category_names) == 30

    def test_clusters_are_separated(self, synthetic_db):
        from repro.clustering.quality import silhouette_score

        sample = np.arange(0, synthetic_db.size, 3)
        score = silhouette_score(
            synthetic_db.features[sample], synthetic_db.labels[sample]
        )
        assert score > 0.3

    def test_too_few_images_rejected(self):
        with pytest.raises(DatasetError):
            build_synthetic_database(10, n_categories=20)

    def test_dims_validated(self):
        with pytest.raises(DatasetError):
            build_synthetic_database(100, n_categories=10, dims=1)

    def test_exact_size(self):
        db = build_synthetic_database(501, n_categories=10, seed=1)
        assert db.size == 501


class TestImageDatabase:
    def test_category_lookups(self, rendered_db):
        ids = rendered_db.ids_of_category("bird_owl")
        assert ids.shape[0] > 0
        for image_id in ids[:3]:
            assert rendered_db.category_of(int(image_id)) == "bird_owl"

    def test_label_of_unknown_raises(self, rendered_db):
        with pytest.raises(UnknownConceptError):
            rendered_db.label_of("nope")

    def test_category_of_out_of_range(self, rendered_db):
        with pytest.raises(DatasetError):
            rendered_db.category_of(10**9)

    def test_ids_of_categories_union(self, rendered_db):
        union = rendered_db.ids_of_categories(
            ["bird_owl", "bird_eagle"]
        )
        a = rendered_db.ids_of_category("bird_owl")
        b = rendered_db.ids_of_category("bird_eagle")
        assert union.shape[0] == a.shape[0] + b.shape[0]
        assert np.array_equal(union, np.sort(np.concatenate([a, b])))

    def test_ground_truth_size(self, rendered_db):
        q = get_query("rose")
        size = rendered_db.ground_truth_size(
            sorted(q.relevant_categories())
        )
        assert size == (
            rendered_db.ids_of_category("rose_red").shape[0]
            + rendered_db.ids_of_category("rose_yellow").shape[0]
        )

    def test_mismatched_lengths_rejected(self, rng):
        with pytest.raises(DatasetError):
            ImageDatabase(
                features=rng.normal(size=(5, 3)),
                raw_features=rng.normal(size=(4, 3)),
                labels=np.zeros(5, dtype=np.int64),
                category_names=["a"],
                normalizer=FeatureNormalizer(),
            )

    def test_bad_labels_rejected(self, rng):
        with pytest.raises(DatasetError):
            ImageDatabase(
                features=rng.normal(size=(3, 2)),
                raw_features=rng.normal(size=(3, 2)),
                labels=np.array([0, 1, 5]),
                category_names=["a", "b"],
                normalizer=FeatureNormalizer(),
            )

    def test_save_load_roundtrip(self, tmp_path, synthetic_db):
        path = tmp_path / "db.npz"
        synthetic_db.save(path)
        loaded = ImageDatabase.load(path)
        assert np.allclose(loaded.features, synthetic_db.features)
        assert np.array_equal(loaded.labels, synthetic_db.labels)
        assert loaded.category_names == synthetic_db.category_names
        assert np.allclose(
            loaded.normalizer.mean_, synthetic_db.normalizer.mean_
        )

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            ImageDatabase.load(tmp_path / "nope.npz")
