"""Tests for the configuration dataclasses."""

import pytest

from repro.config import (
    DatasetConfig,
    FeatureConfig,
    QDConfig,
    RFSConfig,
    SystemConfig,
)
from repro.errors import ConfigurationError


class TestFeatureConfig:
    def test_defaults_total_37_dims(self):
        assert FeatureConfig().total_dims == 37

    def test_paper_family_sizes(self):
        cfg = FeatureConfig()
        assert cfg.color_dims == 9
        assert cfg.texture_dims == 10
        assert cfg.edge_dims == 18

    def test_image_size_must_match_wavelet_levels(self):
        with pytest.raises(ConfigurationError):
            FeatureConfig(image_size=30, wavelet_levels=3)

    def test_image_size_48_is_valid_for_3_levels(self):
        assert FeatureConfig(image_size=48).image_size == 48

    def test_zero_color_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureConfig(color_dims=0)

    def test_negative_edge_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            FeatureConfig(edge_dims=-1)

    def test_frozen(self):
        cfg = FeatureConfig()
        with pytest.raises(AttributeError):
            cfg.color_dims = 5  # type: ignore[misc]


class TestRFSConfig:
    def test_paper_defaults(self):
        cfg = RFSConfig()
        assert cfg.node_max_entries == 100
        assert cfg.node_min_entries == 70
        assert cfg.representative_fraction == 0.05

    def test_split_min_entries_is_relaxed_bound(self):
        assert RFSConfig().split_min_entries == 40

    def test_max_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            RFSConfig(node_max_entries=10, node_min_entries=20)

    def test_min_entries_below_2_rejected(self):
        with pytest.raises(ConfigurationError):
            RFSConfig(node_min_entries=1)

    def test_rep_fraction_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            RFSConfig(representative_fraction=0.0)

    def test_rep_fraction_above_one_rejected(self):
        with pytest.raises(ConfigurationError):
            RFSConfig(representative_fraction=1.5)

    def test_zero_leaf_subclusters_rejected(self):
        with pytest.raises(ConfigurationError):
            RFSConfig(leaf_subclusters=0)

    def test_reinsert_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            RFSConfig(reinsert_fraction=0.0)
        with pytest.raises(ConfigurationError):
            RFSConfig(reinsert_fraction=1.0)


class TestQDConfig:
    def test_paper_defaults(self):
        cfg = QDConfig()
        assert cfg.boundary_threshold == 0.4
        assert cfg.display_size == 21
        assert cfg.max_rounds == 3

    def test_threshold_bounds(self):
        QDConfig(boundary_threshold=0.0)
        QDConfig(boundary_threshold=1.0)
        with pytest.raises(ConfigurationError):
            QDConfig(boundary_threshold=1.5)
        with pytest.raises(ConfigurationError):
            QDConfig(boundary_threshold=-0.1)

    def test_display_size_positive(self):
        with pytest.raises(ConfigurationError):
            QDConfig(display_size=0)

    def test_rounds_positive(self):
        with pytest.raises(ConfigurationError):
            QDConfig(max_rounds=0)


class TestDatasetConfig:
    def test_paper_defaults(self):
        cfg = DatasetConfig()
        assert cfg.total_images == 15_000
        assert cfg.n_categories == 150

    def test_fewer_images_than_categories_rejected(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(total_images=10, n_categories=20)

    def test_zero_categories_rejected(self):
        with pytest.raises(ConfigurationError):
            DatasetConfig(total_images=10, n_categories=0)


class TestSystemConfig:
    def test_bundles_all_defaults(self):
        cfg = SystemConfig()
        assert cfg.features.total_dims == 37
        assert cfg.rfs.node_max_entries == 100
        assert cfg.qd.boundary_threshold == 0.4
        assert cfg.dataset.total_images == 15_000
