"""Tests for the cross-session subquery result cache and batch serving.

Covers the canonical cache key, the byte-capped LRU (eviction order,
oversized entries, byte accounting, pickling), versioned invalidation
against incremental structure mutations (the no-skip gate in
``scripts/check.sh`` targets the ``Invalidation`` classes), cached
final rounds staying bit-identical to the uncached path across all
executors, and the coalescing batch scheduler's parity with serial
per-query execution.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cache import (
    SubqueryResultCache,
    subquery_cache_key,
)
from repro.config import CacheConfig, QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.core.ranking import execute_final_round
from repro.errors import ConfigurationError
from repro.exec import (
    BatchQuery,
    ProcessSubqueryExecutor,
    run_final_round_batch,
)
from repro.index.incremental import IncrementalRFS
from repro.index.rfs import RFSStructure
from repro.store import FeatureStore

N_IMAGES = 900
SEED = 2006
RFS_CONFIG = RFSConfig(
    node_max_entries=60, node_min_entries=30, leaf_subclusters=4
)

_EXECUTORS = ["serial", "thread"] + (
    ["process"] if ProcessSubqueryExecutor.fork_available() else []
)


@pytest.fixture(scope="module")
def database():
    """A small synthetic database shared by the cache tests."""
    from repro.datasets.build import build_synthetic_database

    return build_synthetic_database(N_IMAGES, n_categories=30, seed=SEED)


def _build_rfs(database) -> RFSStructure:
    """A fresh structure (tests mutate trees, so never share one)."""
    return RFSStructure.build(database.features, RFS_CONFIG, seed=SEED)


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _finalize(rfs, marks, k, config, **kwargs):
    result = execute_final_round(
        rfs, marks, k, config, rounds_used=1, **kwargs
    )
    return _signature(result), result


def _marks(database, label, count=8):
    return tuple(
        int(i) for i in np.flatnonzero(database.labels == label)[:count]
    )


def _put(cache, key, *, version=0, node=1, n_ranked=10, dim=8):
    """Insert a synthetic entry of known size (256 + 8*dim + 88*n)."""
    cache.put(
        key,
        version,
        node,
        np.arange(dim, dtype=np.float64),
        [(float(i), i) for i in range(n_ranked)],
    )


#: Size of the entries ``_put`` makes with its defaults.
_PUT_BYTES = 256 + 8 * 8 + 88 * 10


# ----------------------------------------------------------------------
# Cache key
# ----------------------------------------------------------------------
class TestCacheKey:
    def test_deterministic_and_sensitive(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(3, 8))
        base = subquery_cache_key(5, points, 40, 0.4)
        assert base == subquery_cache_key(5, points.copy(), 40, 0.4)
        assert base != subquery_cache_key(6, points, 40, 0.4)
        assert base != subquery_cache_key(5, points, 41, 0.4)
        assert base != subquery_cache_key(5, points, 40, 0.5)

    def test_dtype_and_bytes_partition_the_key_space(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(2, 6))
        base = subquery_cache_key(1, points, 10, 0.4)
        # A float32 store and the raw float64 matrix must never alias.
        assert base != subquery_cache_key(
            1, points.astype(np.float32), 10, 0.4
        )
        nudged = points.copy()
        nudged[0, 0] = np.nextafter(nudged[0, 0], np.inf)
        assert base != subquery_cache_key(1, nudged, 10, 0.4)

    def test_weights_partition_the_key_space(self):
        points = np.ones((2, 4))
        unweighted = subquery_cache_key(1, points, 10, 0.4)
        weighted = subquery_cache_key(1, points, 10, 0.4, np.ones(4))
        assert unweighted != weighted
        assert weighted == subquery_cache_key(
            1, points, 10, 0.4, np.ones(4)
        )
        assert weighted != subquery_cache_key(
            1, points, 10, 0.4, np.full(4, 2.0)
        )

    def test_store_fingerprint_partitions_the_key_space(self):
        points = np.ones((2, 4))
        bare = subquery_cache_key(1, points, 10, 0.4)
        assert bare == subquery_cache_key(
            1, points, 10, 0.4, store_fingerprint=""
        )
        tagged = subquery_cache_key(
            1, points, 10, 0.4, store_fingerprint="float32:int8:abc"
        )
        assert bare != tagged
        assert tagged != subquery_cache_key(
            1, points, 10, 0.4, store_fingerprint="float32:f16:def"
        )


# ----------------------------------------------------------------------
# LRU mechanics
# ----------------------------------------------------------------------
class TestResultCacheLRU:
    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigurationError):
            SubqueryResultCache(0)
        with pytest.raises(ConfigurationError):
            CacheConfig(enabled=True, capacity_mb=0.0)

    def test_put_get_roundtrip(self):
        cache = SubqueryResultCache(1 << 20)
        _put(cache, "k1", version=3, node=17)
        entry = cache.get("k1", 3)
        assert entry is not None
        assert entry.search_node_id == 17
        assert entry.version == 3
        assert entry.centroid.dtype == np.float64
        assert not entry.centroid.flags["WRITEABLE"]
        assert entry.ranked == tuple(
            (float(i), i) for i in range(10)
        )
        assert cache.stats["hits"] == 1
        assert cache.get("absent", 3) is None
        assert cache.stats["misses"] == 1

    def test_version_mismatch_drops_entry(self):
        cache = SubqueryResultCache(1 << 20)
        _put(cache, "k1", version=0)
        assert cache.get("k1", 1) is None
        snap = cache.snapshot()
        assert snap["misses"] == 1
        assert snap["stale_evictions"] == 1
        assert snap["evictions"] == 1
        assert snap["entries"] == 0 and snap["bytes"] == 0
        # The entry is gone for good — even its own version misses now.
        assert cache.get("k1", 0) is None

    def test_lru_eviction_order(self):
        cache = SubqueryResultCache(2 * _PUT_BYTES + 10)
        _put(cache, "a")
        _put(cache, "b")
        assert cache.get("a", 0) is not None  # refresh a; b is now LRU
        _put(cache, "c")
        assert cache.get("b", 0) is None
        assert cache.get("a", 0) is not None
        assert cache.get("c", 0) is not None
        assert cache.stats["evictions"] == 1
        assert len(cache) == 2

    def test_oversized_entry_not_cached(self):
        cache = SubqueryResultCache(_PUT_BYTES - 1)
        _put(cache, "big")
        assert len(cache) == 0
        assert cache.stats["inserts"] == 0

    def test_byte_accounting_and_clear(self):
        cache = SubqueryResultCache(1 << 20)
        for key in ("a", "b", "c"):
            _put(cache, key)
        assert cache.stats["bytes"] == 3 * _PUT_BYTES
        _put(cache, "b")  # replace in place: no growth
        assert cache.stats["bytes"] == 3 * _PUT_BYTES
        assert cache.stats["entries"] == 3
        cache.clear()
        assert len(cache) == 0
        assert cache.stats["bytes"] == 0
        assert cache.stats["inserts"] == 4  # counters survive clear

    def test_pickle_roundtrip_recreates_lock(self):
        cache = SubqueryResultCache(1 << 20)
        _put(cache, "k1", node=9)
        clone = pickle.loads(pickle.dumps(cache))
        entry = clone.get("k1", 0)
        assert entry is not None and entry.search_node_id == 9
        _put(clone, "k2")  # usable lock after unpickling
        assert len(clone) == 2
        assert len(cache) == 1  # independent copies


# ----------------------------------------------------------------------
# Cached final rounds — parity with the uncached path
# ----------------------------------------------------------------------
class TestFinalRoundCaching:
    def test_hits_skip_scans_and_match_uncached(self, database):
        rfs = _build_rfs(database)
        marks = _marks(database, 3)
        config = QDConfig()
        baseline, _ = _finalize(rfs, marks, 30, config)
        rfs.attach_cache(SubqueryResultCache(8 << 20))

        io = rfs.io
        before = io.physical_reads
        miss_sig, miss_res = _finalize(rfs, marks, 30, config)
        miss_reads = io.physical_reads - before

        before = io.physical_reads
        hit_sig, hit_res = _finalize(rfs, marks, 30, config)
        hit_reads = io.physical_reads - before

        assert miss_sig == baseline
        assert hit_sig == baseline
        assert miss_res.stats["cache_hits"] == 0
        assert miss_res.stats["cache_misses"] > 0
        assert hit_res.stats["cache_misses"] == 0
        assert hit_res.stats["cache_hits"] == (
            miss_res.stats["cache_misses"]
        )
        # Hits skip the block scans, so the warm round reads less.
        assert hit_reads < miss_reads

    def test_weighted_round_does_not_hit_unweighted_entries(
        self, database
    ):
        rfs = _build_rfs(database)
        marks = _marks(database, 7)
        config = QDConfig()
        weights = np.linspace(0.5, 1.5, database.dims)
        baseline, _ = _finalize(
            rfs, marks, 20, config, dim_weights=weights
        )
        rfs.attach_cache(SubqueryResultCache(8 << 20))
        _finalize(rfs, marks, 20, config)  # warm the unweighted keys
        weighted_sig, weighted_res = _finalize(
            rfs, marks, 20, config, dim_weights=weights
        )
        assert weighted_sig == baseline
        assert weighted_res.stats["cache_hits"] == 0

    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_cached_sessions_bit_identical_across_executors(
        self, database, executor
    ):
        relevant = set(np.flatnonzero(database.labels == 3).tolist())
        relevant |= set(np.flatnonzero(database.labels == 7).tolist())

        def mark(shown):
            return [i for i in shown if i in relevant]

        baseline_engine = QueryDecompositionEngine(
            database, _build_rfs(database), QDConfig()
        )
        with baseline_engine:
            baseline = _signature(
                baseline_engine.run_scripted(mark, k=50, seed=11)
            )

        engine = QueryDecompositionEngine(
            database,
            _build_rfs(database),
            QDConfig(executor=executor, workers=2),
        )
        engine.attach_cache(SubqueryResultCache(8 << 20))
        with engine:
            first = engine.run_scripted(mark, k=50, seed=11)
            second = engine.run_scripted(mark, k=50, seed=11)
        assert _signature(first) == baseline
        assert _signature(second) == baseline
        if executor != "process":
            # Fork-based workers insert into their own copy-on-write
            # snapshot, so only the shared-memory executors can show
            # hits on the repeat session.
            assert second.stats["cache_hits"] > 0
            assert second.stats["cache_misses"] == 0


# ----------------------------------------------------------------------
# Versioned invalidation — `scripts/check.sh` gates on these passing
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_incremental_mutation_bumps_version(self, database):
        rfs = _build_rfs(database)
        v0 = rfs.structure_version
        inc = IncrementalRFS(rfs, seed=1)
        new_id = inc.insert_image(np.zeros(database.dims))
        assert rfs.structure_version > v0
        v1 = rfs.structure_version
        inc.remove_image(new_id)
        assert rfs.structure_version > v1

    def test_attach_cache_does_not_bump_version(self, database):
        rfs = _build_rfs(database)
        version = rfs.structure_version
        cache = SubqueryResultCache(1 << 16)
        rfs.attach_cache(cache)
        assert rfs.result_cache is cache
        assert rfs.structure_version == version
        rfs.detach_cache()
        assert rfs.result_cache is None
        assert rfs.structure_version == version

    def test_mutation_yields_miss_not_stale_hit(self, database):
        rfs = _build_rfs(database)
        cache = SubqueryResultCache(8 << 20)
        rfs.attach_cache(cache)
        marks = _marks(database, 5)
        config = QDConfig()
        _finalize(rfs, marks, 25, config)  # warm
        assert len(cache) > 0

        inc = IncrementalRFS(rfs, seed=2)
        inc.insert_image(np.full(database.dims, 40.0))

        before = cache.snapshot()
        after_sig, _ = _finalize(rfs, marks, 25, config)
        after = cache.snapshot()
        # No global flush happened, yet nothing stale was served: the
        # repeated subqueries missed and re-ran against the new tree.
        assert after["hits"] == before["hits"]
        assert after["misses"] > before["misses"]
        assert after["stale_evictions"] >= 1

        rfs.detach_cache()
        baseline_sig, _ = _finalize(rfs, marks, 25, config)
        assert after_sig == baseline_sig

    def test_randomized_mutation_query_interleavings(self, database):
        """Property: under any interleaving of incremental mutations and
        (possibly repeated) queries, a cached final round is always
        bit-identical to an uncached one on the current structure."""
        rfs = _build_rfs(database)
        cache = SubqueryResultCache(8 << 20)
        rfs.attach_cache(cache)
        inc = IncrementalRFS(rfs, seed=5)
        config = QDConfig()
        rng = np.random.default_rng(42)
        inserted: list[int] = []
        queries_checked = 0
        for _ in range(20):
            roll = rng.random()
            if roll < 0.20:
                new_id = inc.insert_image(
                    rng.normal(scale=2.0, size=database.dims)
                )
                inserted.append(new_id)
            elif roll < 0.35 and inserted:
                inc.remove_image(inserted.pop())
            else:
                marks = tuple(
                    int(i)
                    for i in rng.choice(N_IMAGES, size=6, replace=False)
                )
                cold_sig, _ = _finalize(rfs, marks, 15, config)
                warm_sig, _ = _finalize(rfs, marks, 15, config)
                rfs.detach_cache()
                try:
                    truth_sig, _ = _finalize(rfs, marks, 15, config)
                finally:
                    rfs.attach_cache(cache)
                assert cold_sig == truth_sig
                assert warm_sig == truth_sig
                queries_checked += 1
        assert queries_checked > 0
        assert cache.snapshot()["hits"] > 0


class TestStoreSwapInvalidation:
    def test_store_attach_detach_bump_and_reattach_is_noop(
        self, database
    ):
        rfs = _build_rfs(database)
        store = FeatureStore.build(rfs)
        v0 = rfs.structure_version
        rfs.attach_store(store, validate=False)
        assert rfs.structure_version == v0 + 1
        rfs.attach_store(store)  # same object: idempotent, no bump
        assert rfs.structure_version == v0 + 1
        rfs.detach_store()
        assert rfs.structure_version == v0 + 2
        rfs.detach_store()  # nothing attached: no bump
        assert rfs.structure_version == v0 + 2

    def test_float32_store_entries_not_served_after_detach(
        self, database
    ):
        rfs = _build_rfs(database)
        cache = SubqueryResultCache(8 << 20)
        rfs.attach_cache(cache)
        rfs.attach_store(FeatureStore.build(rfs), validate=False)
        marks = _marks(database, 9)
        config = QDConfig()
        _finalize(rfs, marks, 20, config)  # warm against the store
        rfs.detach_store()
        before = cache.snapshot()
        detached_sig, _ = _finalize(rfs, marks, 20, config)
        assert cache.snapshot()["hits"] == before["hits"]
        rfs.detach_cache()
        baseline_sig, _ = _finalize(rfs, marks, 20, config)
        assert detached_sig == baseline_sig

    def test_tier_flip_misses_instead_of_aliasing(self, database):
        """Same tree version, different scan tier → different keys.

        Three freshly built structures land on identical structure
        versions, so without the store fingerprint in the cache key a
        shared cache would serve the first tier's entries to the other
        two.  Each tier must take its own cold misses; a rerun on the
        same tier must hit.
        """
        cache = SubqueryResultCache(8 << 20)
        marks = _marks(database, 9)
        config = QDConfig()

        def run(tier):
            rfs = _build_rfs(database)
            rfs.attach_store(
                FeatureStore.build(rfs, tier=tier), validate=False
            )
            rfs.attach_cache(cache)
            before = cache.snapshot()
            sig, _ = _finalize(rfs, marks, 20, config)
            delta = cache.snapshot()
            return sig, delta["hits"] - before["hits"]

        sigs = {}
        for tier in ("int8", "f32", "f16"):
            sigs[tier], hits = run(tier)
            assert hits == 0, f"tier {tier} aliased another tier's entries"
        # The tiers' final rankings agree (the parity contract) — which
        # is exactly why aliasing would go unnoticed without the
        # fingerprint guard on intermediate results.
        assert sigs["int8"] == sigs["f32"] == sigs["f16"]
        _, rerun_hits = run("int8")
        assert rerun_hits > 0


# ----------------------------------------------------------------------
# Coalescing batch scheduler
# ----------------------------------------------------------------------
def _batch_workload(database):
    """A small multi-session workload with a repeated hot query."""
    specs = [(3, 20), (7, 25), (12, 30), (3, 20)]  # duplicate of #0
    return [
        BatchQuery(marked_ids=_marks(database, label, 6), k=k)
        for label, k in specs
    ]


class TestBatchScheduler:
    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_batch_bit_identical_to_serial_uncached(
        self, database, executor
    ):
        queries = _batch_workload(database)
        base_rfs = _build_rfs(database)
        baseline = [
            _finalize(base_rfs, q.marked_ids, q.k, QDConfig())[0]
            for q in queries
        ]

        rfs = _build_rfs(database)
        rfs.attach_cache(SubqueryResultCache(8 << 20))
        config = QDConfig(executor=executor, workers=2)
        cold = run_final_round_batch(rfs, queries, config, rounds_used=1)
        assert [_signature(r) for r in cold] == baseline
        # The duplicated query shares its group's block reads, so some
        # subqueries must have coalesced or hit on the first pass.
        warm = run_final_round_batch(rfs, queries, config, rounds_used=1)
        assert [_signature(r) for r in warm] == baseline
        for result in warm:
            assert result.stats["cache_hits"] > 0
            assert result.stats["cache_misses"] == 0

    def test_batch_with_store_matches_store_serial(self, database):
        queries = _batch_workload(database)
        base_rfs = _build_rfs(database)
        base_rfs.attach_store(FeatureStore.build(base_rfs), validate=False)
        baseline = [
            _finalize(base_rfs, q.marked_ids, q.k, QDConfig())[0]
            for q in queries
        ]

        rfs = _build_rfs(database)
        rfs.attach_store(FeatureStore.build(rfs), validate=False)
        rfs.attach_cache(SubqueryResultCache(8 << 20))
        results = run_final_round_batch(
            rfs, queries, QDConfig(executor="thread", workers=2),
            rounds_used=1,
        )
        assert [_signature(r) for r in results] == baseline

    def test_batch_without_cache_matches_and_reports_no_stats(
        self, database
    ):
        queries = _batch_workload(database)
        base_rfs = _build_rfs(database)
        baseline = [
            _finalize(base_rfs, q.marked_ids, q.k, QDConfig())[0]
            for q in queries
        ]
        rfs = _build_rfs(database)
        results = run_final_round_batch(
            rfs, queries, QDConfig(), rounds_used=1
        )
        assert [_signature(r) for r in results] == baseline
        for result in results:
            assert "cache_hits" not in result.stats
            assert "cache_misses" not in result.stats

    def test_engine_run_batch_accepts_tuples(self, database):
        engine = QueryDecompositionEngine.build(
            database,
            RFS_CONFIG,
            seed=SEED,
            cache=CacheConfig(enabled=True, capacity_mb=8),
        )
        assert engine.result_cache is not None
        marks = _marks(database, 4, 6)
        with engine:
            from_tuple = engine.run_batch([(marks, 20)])
            from_query = engine.run_batch(
                [BatchQuery(marked_ids=marks, k=20)]
            )
        assert _signature(from_tuple[0]) == _signature(from_query[0])
        assert from_query[0].stats["cache_hits"] > 0

    def test_batch_coalesces_block_reads(self, database):
        """N identical sessions in one batch cost ~1 session of reads."""
        marks = _marks(database, 11, 6)
        single_rfs = _build_rfs(database)
        before = single_rfs.io.physical_reads
        _finalize(single_rfs, marks, 20, QDConfig())
        single_reads = single_rfs.io.physical_reads - before

        batch_rfs = _build_rfs(database)
        queries = [
            BatchQuery(marked_ids=marks, k=20) for _ in range(4)
        ]
        before = batch_rfs.io.physical_reads
        run_final_round_batch(
            batch_rfs, queries, QDConfig(), rounds_used=1
        )
        batch_reads = batch_rfs.io.physical_reads - before
        # Four identical queries, one scan: far cheaper than 4x serial.
        assert batch_reads < 2 * single_reads
