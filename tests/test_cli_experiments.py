"""CLI experiment-subcommand tests (small database scale)."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.engine import _screens_for_round
from repro.eval.experiments import _trimmed_mean


@pytest.fixture(scope="module")
def db_path(tmp_path_factory, rendered_db):
    path = tmp_path_factory.mktemp("clix") / "db.npz"
    rendered_db.save(path)
    return path


class TestExperimentSubcommands:
    def test_table1(self, db_path, capsys):
        assert cli_main([
            "experiment", "table1", "--db", str(db_path),
            "--trials", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Average" in out

    def test_table2(self, db_path, capsys):
        assert cli_main([
            "experiment", "table2", "--db", str(db_path),
            "--trials", "1", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "n/a" in out

    def test_cases(self, db_path, capsys):
        assert cli_main([
            "experiment", "cases", "--db", str(db_path),
            "--seed", "3",
        ]) == 0
        assert "top-8" in capsys.readouterr().out

    def test_interactive_with_scripted_stdin(self, db_path, capsys,
                                             monkeypatch):
        replies = iter(["all", "all", "all"])
        monkeypatch.setattr(
            "builtins.input", lambda prompt="": next(replies)
        )
        assert cli_main([
            "interactive", "--db", str(db_path), "--k", "10",
            "--rounds", "3", "--screens", "1", "--seed", "5",
        ]) == 0
        assert "final result" in capsys.readouterr().out


class TestEngineHelpers:
    def test_screens_for_round_int(self):
        assert _screens_for_round(4, 1) == 4
        assert _screens_for_round(4, 9) == 4

    def test_screens_for_round_sequence(self):
        assert _screens_for_round((2, 5, 9), 1) == 2
        assert _screens_for_round((2, 5, 9), 3) == 9
        assert _screens_for_round((2, 5, 9), 7) == 9  # last repeats

    def test_screens_for_round_empty_sequence(self):
        assert _screens_for_round((), 1) == 1


class TestTrimmedMean:
    def test_plain_mean_when_short(self):
        assert _trimmed_mean([1.0, 3.0]) == 2.0

    def test_trims_outliers(self):
        values = [1.0] * 18 + [100.0, 0.0]
        assert _trimmed_mean(values, trim=0.1) == pytest.approx(1.0)

    def test_empty(self):
        assert _trimmed_mean([]) == 0.0

    def test_matches_numpy_on_uniform(self):
        values = list(np.linspace(0, 1, 50))
        assert _trimmed_mean(values) == pytest.approx(0.5, abs=0.02)
