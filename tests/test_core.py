"""Tests for the QD core: subqueries, sessions, ranking, presentation."""

import numpy as np
import pytest

from repro.config import QDConfig
from repro.core.presentation import QueryResult, ResultGroup
from repro.core.ranking import execute_final_round, group_marks_by_leaf
from repro.core.session import FeedbackSession
from repro.core.subquery import SubQuery
from repro.datasets.queryset import get_query
from repro.errors import QueryError, SessionStateError
from repro.eval.oracle import SimulatedUser
from repro.retrieval.topk import RankedList


class TestSubQuery:
    def test_unseen_representatives_shrink(self, rfs):
        sub = SubQuery(node=rfs.root)
        before = sub.unseen_representatives()
        sub.shown.add(before[0])
        after = sub.unseen_representatives()
        assert len(after) == len(before) - 1
        assert before[0] not in after

    def test_query_matrix(self, rfs):
        sub = SubQuery(node=rfs.root)
        sub.marked.update([3, 1, 2])
        matrix = sub.query_matrix(rfs.features)
        assert matrix.shape == (3, rfs.features.shape[1])
        assert np.allclose(matrix[0], rfs.features[1])  # sorted order


class TestSessionLifecycle:
    def test_initial_state(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        assert session.round == 0
        assert session.active_node_ids == [rfs.root.node_id]
        assert not session.finalized

    def test_display_increments_round(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        shown = session.display()
        assert session.round == 1
        assert 0 < len(shown) <= QDConfig().display_size

    def test_display_respects_screens(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        shown = session.display(screens=3)
        assert len(shown) <= 3 * QDConfig().display_size

    def test_display_twice_without_submit_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        session.display()
        with pytest.raises(SessionStateError):
            session.display()

    def test_submit_before_display_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        with pytest.raises(SessionStateError):
            session.submit([1])

    def test_submit_undisplayed_image_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        shown = session.display()
        bad = max(shown) + 10**6
        with pytest.raises(SessionStateError):
            session.submit([bad])

    def test_invalid_screens_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        with pytest.raises(SessionStateError):
            session.display(screens=0)

    def test_finalize_without_marks_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        session.display()
        session.submit([])
        with pytest.raises(SessionStateError):
            session.finalize(10)

    def test_finalize_twice_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        shown = session.display(screens=5)
        session.submit(shown[:2])
        session.finalize(10)
        with pytest.raises(SessionStateError):
            session.finalize(10)

    def test_display_after_finalize_raises(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        shown = session.display(screens=5)
        session.submit(shown[:1])
        session.finalize(5)
        with pytest.raises(SessionStateError):
            session.display()

    def test_no_marks_keeps_branches_active(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        session.display()
        session.submit([])
        assert session.active_node_ids == [rfs.root.node_id]

    def test_never_reshows_images_for_same_node(self, rfs):
        session = FeedbackSession(rfs, seed=0)
        first = set(session.display(screens=2))
        session.submit([])
        second = set(session.display(screens=2))
        assert not first & second


class TestSessionDecomposition:
    def test_marks_split_query_into_children(self, rfs):
        session = FeedbackSession(rfs, seed=1)
        shown = session.display(screens=50)  # see everything at the root
        # Mark two representatives routed to different children.
        root = rfs.root
        by_child: dict[int, int] = {}
        for rep in shown:
            child = root.child_of_representative(rep)
            by_child.setdefault(child.node_id, rep)
            if len(by_child) == 2:
                break
        assert len(by_child) == 2, "root needs >= 2 children for this test"
        session.submit(list(by_child.values()))
        assert session.n_subqueries == 2
        assert set(session.active_node_ids) == set(by_child)

    def test_marks_accumulate(self, rfs):
        session = FeedbackSession(rfs, seed=1)
        shown = session.display(screens=50)
        session.submit(shown[:3])
        assert len(session.marked_ids) == 3
        shown2 = session.display(screens=50)
        session.submit(shown2[:2])
        assert len(set(session.marked_ids)) >= 3

    def test_io_charged_per_active_node_per_round(self, rfs):
        session = FeedbackSession(rfs, seed=1)
        rfs.io.reset()
        session.display()
        assert rfs.io.per_category["feedback"] == 1  # just the root
        session.submit([])


class TestGroupMarksByLeaf:
    def test_groups_match_leaf_membership(self, rfs):
        marks = [0, 1, 2, 50, 100]
        groups = group_marks_by_leaf(rfs, marks)
        for leaf_id, ids in groups.items():
            leaf = rfs.get_node(leaf_id)
            for image_id in ids:
                assert image_id in leaf.item_ids

    def test_deduplicates(self, rfs):
        groups = group_marks_by_leaf(rfs, [5, 5, 5])
        total = sum(len(v) for v in groups.values())
        assert total == 1


class TestExecuteFinalRound:
    def test_result_has_k_images(self, rfs):
        result = execute_final_round(
            rfs, [0, 1, 2, 200, 300], k=30, config=QDConfig(),
            rounds_used=3,
        )
        assert len(result.all_ids()) == 30

    def test_no_duplicate_results(self, rfs):
        result = execute_final_round(
            rfs, [0, 1, 2, 200, 300], k=50, config=QDConfig(),
            rounds_used=3,
        )
        ids = result.all_ids()
        assert len(ids) == len(set(ids))

    def test_groups_sorted_by_ranking_score(self, rfs):
        result = execute_final_round(
            rfs, [0, 50, 200, 300], k=40, config=QDConfig(),
            rounds_used=3,
        )
        scores = [g.ranking_score for g in result.groups]
        assert scores == sorted(scores)

    def test_weights_match_marks(self, rfs):
        marks = [0, 1, 2]
        result = execute_final_round(
            rfs, marks, k=12, config=QDConfig(), rounds_used=3
        )
        assert sum(g.weight for g in result.groups) == len(set(marks))

    def test_invalid_k_rejected(self, rfs):
        with pytest.raises(QueryError):
            execute_final_round(
                rfs, [0], k=0, config=QDConfig(), rounds_used=3
            )

    def test_no_marks_rejected(self, rfs):
        with pytest.raises(QueryError):
            execute_final_round(
                rfs, [], k=5, config=QDConfig(), rounds_used=3
            )

    def test_proportional_contribution(self, rfs):
        """A leaf with more marks contributes more results (§3.4)."""
        leaf_a = rfs.root
        while not leaf_a.is_leaf:
            leaf_a = leaf_a.children[0]
        leaf_b = rfs.root
        while not leaf_b.is_leaf:
            leaf_b = leaf_b.children[-1]
        assert leaf_a.node_id != leaf_b.node_id
        marks = [int(i) for i in leaf_a.item_ids[:4]]
        marks += [int(leaf_b.item_ids[0])]
        result = execute_final_round(
            rfs, marks, k=20, config=QDConfig(), rounds_used=3
        )
        by_leaf = {g.leaf_node_id: len(g) for g in result.groups}
        assert by_leaf[leaf_a.node_id] > by_leaf[leaf_b.node_id]


class TestPresentation:
    def _result(self):
        g1 = ResultGroup(
            leaf_node_id=1, search_node_id=1, query_image_ids=[7],
            items=RankedList.from_pairs([(0.5, 10), (0.7, 11)]),
        )
        g2 = ResultGroup(
            leaf_node_id=2, search_node_id=2, query_image_ids=[8, 9],
            items=RankedList.from_pairs([(0.1, 12), (0.2, 13)]),
        )
        return QueryResult(groups=[g1, g2], rounds_used=3)

    def test_groups_reordered_by_ranking_score(self):
        result = self._result()
        assert [g.leaf_node_id for g in result.groups] == [2, 1]

    def test_all_ids_in_group_order(self):
        assert self._result().all_ids() == [12, 13, 10, 11]

    def test_flatten_k(self):
        assert self._result().flatten(3) == [12, 13, 10]

    def test_flatten_by_score_interleaves(self):
        flat = self._result().flatten_by_score()
        assert flat.ids() == [12, 13, 10, 11]

    def test_flatten_by_score_dedupes(self):
        g1 = ResultGroup(1, 1, [0],
                         RankedList.from_pairs([(0.5, 10)]))
        g2 = ResultGroup(2, 2, [1],
                         RankedList.from_pairs([(0.1, 10)]))
        result = QueryResult(groups=[g1, g2], rounds_used=3)
        flat = result.flatten_by_score()
        assert flat.ids() == [10]
        assert flat.items[0].score == pytest.approx(0.1)

    def test_describe_mentions_groups(self):
        text = self._result().describe()
        assert "2 group(s)" in text
        assert "ranking_score" in text

    def test_ranking_score_is_item_sum(self):
        result = self._result()
        group = result.groups[0]
        assert group.ranking_score == pytest.approx(0.1 + 0.2)


class TestEngineScripted:
    def test_oracle_session_end_to_end(self, engine):
        db = engine.database
        query = get_query("rose")
        user = SimulatedUser(db, query, seed=0)
        k = db.ground_truth_size(sorted(query.relevant_categories()))
        result = engine.run_scripted(user.mark, k=k, seed=0)
        assert len(result.all_ids()) == k
        assert result.stats["n_subqueries"] >= 2

    def test_round_callback_invoked(self, engine):
        db = engine.database
        user = SimulatedUser(db, get_query("bird"), seed=1)
        seen = []
        engine.run_scripted(
            user.mark, k=20, seed=1,
            round_callback=lambda r, s: seen.append(r),
        )
        assert seen == [1, 2, 3]

    def test_timing_recorded(self, engine):
        from repro.utils.timing import TimingLog

        db = engine.database
        user = SimulatedUser(db, get_query("bird"), seed=2)
        log = TimingLog()
        engine.run_scripted(user.mark, k=20, seed=2, timing=log)
        assert log.count("initial") == 1
        assert log.count("iteration") == 2
        assert log.count("final_knn") == 1

    def test_rounds_override(self, engine):
        db = engine.database
        user = SimulatedUser(db, get_query("bird"), seed=3)
        result = engine.run_scripted(
            user.mark, k=20, rounds=2, seed=3,
            screens_per_round=(50, 50),
        )
        assert result.rounds_used == 2
