"""Tests for the parallel subquery execution layer (:mod:`repro.exec`).

The load-bearing property is *determinism*: serial, thread, and process
execution of the final-round fan-out must return bit-identical ranked
ids and scores, across seeds, subquery counts, and boundary-expansion
settings.  The merge consumes outcomes in submission order and every
executor funnels through the same ``run_subquery_task``, so any
divergence here is a real bug, not float noise.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.config import QDConfig
from repro.core.engine import QueryDecompositionEngine
from repro.core.ranking import execute_final_round
from repro.errors import ConfigurationError
from repro.exec import (
    ProcessSubqueryExecutor,
    SerialSubqueryExecutor,
    SubqueryTask,
    ThreadedSubqueryExecutor,
    build_executor,
    resolve_executor,
    run_subquery_task,
)

needs_fork = pytest.mark.skipif(
    not ProcessSubqueryExecutor.fork_available(),
    reason="fork start method unavailable on this platform",
)


def _marks_across_leaves(rfs, n_leaves: int, per_leaf: int = 2) -> list:
    """Image ids spanning ``n_leaves`` distinct RFS leaves."""
    by_leaf: dict[int, list[int]] = {}
    for image_id in range(rfs.features.shape[0]):
        leaf_id = rfs.leaf_of_item(image_id).node_id
        bucket = by_leaf.setdefault(leaf_id, [])
        if len(bucket) < per_leaf:
            bucket.append(image_id)
    leaves = sorted(by_leaf)[:n_leaves]
    assert len(leaves) == n_leaves, "database has too few leaves"
    return [i for leaf_id in leaves for i in by_leaf[leaf_id]]


def _signature(result):
    """Everything rank-relevant about a result, exactly."""
    return [
        (
            group.leaf_node_id,
            group.search_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


class TestExecutorConstruction:
    def test_build_by_kind(self):
        assert isinstance(build_executor("serial"), SerialSubqueryExecutor)
        assert isinstance(build_executor("thread", 2), ThreadedSubqueryExecutor)
        assert isinstance(
            build_executor("process", 2), ProcessSubqueryExecutor
        )

    def test_build_unknown_kind_raises(self):
        with pytest.raises(ConfigurationError):
            build_executor("gpu")

    def test_bad_config_values_raise(self):
        with pytest.raises(ConfigurationError):
            QDConfig(executor="gpu")
        with pytest.raises(ConfigurationError):
            QDConfig(workers=-1)

    def test_resolve_from_config(self):
        executor = resolve_executor(QDConfig(executor="thread", workers=3))
        assert isinstance(executor, ThreadedSubqueryExecutor)
        assert executor.workers == 3

    def test_serial_is_single_worker(self):
        assert SerialSubqueryExecutor().workers == 1

    def test_close_is_idempotent(self):
        executor = ThreadedSubqueryExecutor(2)
        executor.close()
        executor.close()

    def test_context_manager_closes_pool(self, rfs):
        tasks = [
            SubqueryTask(leaf_id=rfs.leaf_of_item(0).node_id, quota=3,
                         query_ids=(0,)),
            SubqueryTask(leaf_id=rfs.leaf_of_item(0).node_id, quota=3,
                         query_ids=(0,)),
        ]
        with ThreadedSubqueryExecutor(2) as executor:
            executor.run_subqueries(rfs, tasks, QDConfig())
            assert executor._pool is not None
        assert executor._pool is None


class TestRunSubqueryTask:
    def test_single_task_matches_direct_knn(self, rfs):
        marks = _marks_across_leaves(rfs, 1, per_leaf=3)
        leaf_id = rfs.leaf_of_item(marks[0]).node_id
        task = SubqueryTask(
            leaf_id=leaf_id, quota=5, query_ids=tuple(marks)
        )
        outcome = run_subquery_task(rfs, QDConfig(), task)
        assert outcome.leaf_id == leaf_id
        assert len(outcome.ranked) >= 5
        scores = [dist for dist, _ in outcome.ranked]
        assert scores == sorted(scores)
        assert outcome.duration_s >= 0.0

    def test_threaded_single_task_runs_inline(self, rfs):
        marks = _marks_across_leaves(rfs, 1)
        task = SubqueryTask(
            leaf_id=rfs.leaf_of_item(marks[0]).node_id,
            quota=4,
            query_ids=tuple(marks),
        )
        executor = ThreadedSubqueryExecutor(2)
        try:
            outcomes = executor.run_subqueries(rfs, [task], QDConfig())
            assert len(outcomes) == 1
            assert executor._pool is None  # <=1 task: no pool spun up
        finally:
            executor.close()


class TestDeterminism:
    """Serial vs thread vs process: bit-identical final rankings."""

    @pytest.mark.parametrize("n_leaves", [2, 5, 9])
    @pytest.mark.parametrize("boundary", [0.0, 0.4, 1.0])
    def test_thread_matches_serial(self, rfs, n_leaves, boundary):
        marks = _marks_across_leaves(rfs, n_leaves)
        config = QDConfig(boundary_threshold=boundary)
        k = 6 * n_leaves
        with SerialSubqueryExecutor() as serial:
            baseline = execute_final_round(
                rfs, marks, k, config, rounds_used=1, executor=serial
            )
        with ThreadedSubqueryExecutor(4) as threaded:
            parallel = execute_final_round(
                rfs, marks, k, config, rounds_used=1, executor=threaded
            )
        assert _signature(parallel) == _signature(baseline)

    @needs_fork
    @pytest.mark.parametrize("n_leaves", [2, 6])
    def test_process_matches_serial(self, rfs, n_leaves):
        marks = _marks_across_leaves(rfs, n_leaves)
        config = QDConfig()
        k = 6 * n_leaves
        with SerialSubqueryExecutor() as serial:
            baseline = execute_final_round(
                rfs, marks, k, config, rounds_used=1, executor=serial
            )
        with ProcessSubqueryExecutor(2) as procs:
            parallel = execute_final_round(
                rfs, marks, k, config, rounds_used=1, executor=procs
            )
        assert _signature(parallel) == _signature(baseline)

    @pytest.mark.parametrize("seed", [0, 7, 2006])
    def test_full_session_identical_across_executors(
        self, rendered_db, rfs, seed
    ):
        from repro.datasets.queryset import get_query
        from repro.eval.oracle import SimulatedUser

        query = get_query("bird")
        signatures = []
        for kind in ("serial", "thread"):
            engine = QueryDecompositionEngine(
                rendered_db, rfs, QDConfig(executor=kind, workers=4)
            )
            user = SimulatedUser(rendered_db, query, seed=seed)
            with engine:
                result = engine.run_scripted(
                    user.mark, k=60, rounds=3, seed=seed
                )
            signatures.append(_signature(result))
        assert signatures[0] == signatures[1]


class TestObservabilityAcrossWorkers:
    def test_thread_spans_attach_to_session_tree(self, rendered_db, rfs):
        from repro.datasets.queryset import get_query
        from repro.eval.oracle import SimulatedUser
        from repro.obs.summarize import summarize

        tracer = obs.Tracer()
        engine = QueryDecompositionEngine(
            rendered_db, rfs, QDConfig(executor="thread", workers=4)
        )
        user = SimulatedUser(rendered_db, get_query("bird"), seed=3)
        with obs.use_tracer(tracer), engine:
            result = engine.run_scripted(user.mark, k=60, rounds=3, seed=3)
        # One root; every subquery span landed inside it, none detached.
        assert len(tracer.spans) == 1
        summary = summarize(tracer)
        assert summary.n_localized_knn >= result.n_groups

    @needs_fork
    def test_process_spans_and_metrics_graft(self, rfs):
        marks = _marks_across_leaves(rfs, 4)
        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        io = rfs.io
        logical_before = io.logical_reads
        with obs.use_tracer(tracer), obs.use_metrics(registry):
            with ProcessSubqueryExecutor(2) as procs:
                execute_final_round(
                    rfs, marks, 24, QDConfig(), rounds_used=1,
                    executor=procs,
                )
        # Worker page reads were folded back into the parent counter.
        assert io.logical_reads > logical_before
        # Worker distance computations were merged into the registry.
        dumped = registry.to_payload()
        assert dumped["counters"]["qd_distance_computations"][1] > 0
        # Subquery spans were grafted under the live merge span.
        merge_spans = [
            span
            for root in tracer.spans
            for span in _walk(root)
            if span.name == "merge"
        ]
        assert merge_spans
        grafted = [
            child
            for span in merge_spans
            for child in span.children
            if child.name == "subquery"
        ]
        assert len(grafted) == 4
        # Per-worker accounting now carries process-labelled entries.
        assert any(
            key.startswith("proc") for key in io.worker_stats()
        )


def _walk(span):
    yield span
    for child in span.children:
        yield from _walk(child)
