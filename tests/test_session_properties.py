"""Property-based tests on the feedback-session state machine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import QDConfig, RFSConfig
from repro.core.session import FeedbackSession
from repro.index.rfs import RFSStructure


@pytest.fixture(scope="module")
def session_rfs():
    feats = np.random.default_rng(5).normal(size=(500, 10))
    return RFSStructure.build(
        feats,
        RFSConfig(node_max_entries=50, node_min_entries=25,
                  leaf_subclusters=3),
        seed=5,
    )


class TestSessionInvariants:
    @given(
        st.lists(
            st.tuples(
                st.integers(1, 4),          # screens this round
                st.floats(0.0, 1.0),        # fraction of shown to mark
            ),
            min_size=1,
            max_size=5,
        ),
        st.integers(0, 100),
    )
    @settings(max_examples=20, deadline=None)
    def test_random_sessions_keep_invariants(
        self, session_rfs, rounds, seed
    ):
        rng = np.random.default_rng(seed)
        session = FeedbackSession(session_rfs, QDConfig(), seed=seed)
        all_shown: set[int] = set()
        for screens, fraction in rounds:
            shown = session.display(screens=screens)
            all_shown.update(shown)
            n_marks = int(round(fraction * len(shown)))
            marks = (
                [shown[int(i)] for i in
                 rng.choice(len(shown), size=n_marks, replace=False)]
                if shown and n_marks
                else []
            )
            session.submit(marks)

            # Invariant: marks are a subset of everything ever shown.
            assert set(session.marked_ids) <= all_shown
            # Invariant: active nodes cover pairwise-disjoint subtrees.
            actives = [
                session_rfs.get_node(i) for i in session.active_node_ids
            ]
            for i, a in enumerate(actives):
                sa = set(a.item_ids.tolist())
                for b in actives[i + 1:]:
                    sb = set(b.item_ids.tolist())
                    nested = sa <= sb or sb <= sa
                    assert nested or not (sa & sb), (
                        "active subtrees overlap without nesting"
                    )
        if session.marked_ids:
            result = session.finalize(25)
            ids = result.flatten(25)
            # Result ids are unique and drawn from the database.
            assert len(ids) == len(set(ids))
            assert all(
                0 <= i < session_rfs.features.shape[0] for i in ids
            )

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_display_never_repeats_per_node(self, session_rfs, seed):
        session = FeedbackSession(session_rfs, QDConfig(), seed=seed)
        first = session.display(screens=2)
        session.submit([])
        second = session.display(screens=2)
        assert not set(first) & set(second)

    @given(st.integers(0, 50))
    @settings(max_examples=10, deadline=None)
    def test_round_counter_monotone(self, session_rfs, seed):
        session = FeedbackSession(session_rfs, QDConfig(), seed=seed)
        for expected in (1, 2, 3):
            session.display()
            assert session.round == expected
            session.submit([])
