"""Tests for the concurrent serving stack (repro.serve).

Covers the new config validation (ServeConfig bounds, session ttl),
the structured :class:`FrontEndResult` surface of ``SessionFrontEnd``
(including stale-session signalling as a retriable response), the
``QDServer`` admission control (load shedding, deadlines, graceful
drain, stats/metrics) and the JSON-lines TCP front.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import numpy as np
import pytest

from repro.config import QDConfig, RFSConfig, ServeConfig, SessionStoreConfig
from repro.core import SessionFrontEnd
from repro.core.clientserver import FrontEndResult
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import build_synthetic_database
from repro.errors import ConfigurationError
from repro.serve import QDServer, serve_tcp
from repro.sessionstore import InMemorySessionStore

N_IMAGES = 400
SEED = 1129
RFS_CONFIG = RFSConfig(
    node_max_entries=40, node_min_entries=16, leaf_subclusters=3
)


@pytest.fixture(scope="module")
def database():
    return build_synthetic_database(N_IMAGES, n_categories=30, seed=SEED)


@pytest.fixture()
def engine(database):
    with QueryDecompositionEngine.build(
        database, RFS_CONFIG, QDConfig(), seed=SEED
    ) as eng:
        eng.attach_session_store(InMemorySessionStore())
        yield eng


def _mark_fn(database):
    # Prefer a couple of true categories, but never return an empty
    # mark set (finalize needs at least one relevant image).
    relevant = set(np.flatnonzero(database.labels <= 4).tolist())
    return lambda shown: (
        [i for i in shown if i in relevant] or list(shown[:3])
    )


# ----------------------------------------------------------------------
# Config validation (satellite: reject nonsensical bounds up front)
# ----------------------------------------------------------------------
class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"workers": 0},
            {"workers": -3},
            {"queue_limit": 0},
            {"default_deadline_s": 0.0},
            {"default_deadline_s": -1.0},
            {"default_deadline_s": float("inf")},
            {"default_deadline_s": float("nan")},
            {"drain_timeout_s": -0.5},
            {"drain_timeout_s": float("nan")},
            {"shards": -1},
        ],
    )
    def test_serve_config_rejects(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeConfig(**kwargs)

    def test_serve_config_defaults_valid(self):
        config = ServeConfig()
        assert config.workers >= 1
        assert config.queue_limit >= 1
        # 0 = wait forever is an allowed drain timeout.
        ServeConfig(drain_timeout_s=0.0)

    @pytest.mark.parametrize(
        "ttl", [0.0, -5.0, float("inf"), float("nan")]
    )
    def test_session_ttl_rejects_non_positive(self, ttl):
        with pytest.raises(ConfigurationError):
            SessionStoreConfig(ttl_s=ttl)


# ----------------------------------------------------------------------
# SessionFrontEnd.handle — structured results
# ----------------------------------------------------------------------
class TestFrontEndHandle:
    def test_ok_dialogue(self, database, engine):
        frontend = SessionFrontEnd(engine)
        mark = _mark_fn(database)
        opened = frontend.handle("open", seed=3)
        assert opened.ok and not opened.retriable
        sid = opened.value
        shown = frontend.handle("display", session_id=sid, screens=2)
        assert shown.ok
        marked = frontend.handle(
            "submit", session_id=sid, relevant_ids=mark(shown.value)
        )
        assert marked.ok
        final = frontend.handle("finalize", session_id=sid, k=30)
        assert final.ok
        assert final.value.groups

    def test_unknown_op(self, engine):
        result = SessionFrontEnd(engine).handle("explode")
        assert result == FrontEndResult(
            ok=False,
            error_kind="invalid_request",
            error=result.error,
        )
        assert "explode" in result.error

    def test_not_found(self, engine):
        result = SessionFrontEnd(engine).handle(
            "display", session_id="no-such-session"
        )
        assert not result.ok
        assert result.error_kind == "not_found"
        assert not result.retriable

    def test_invalid_state(self, engine):
        frontend = SessionFrontEnd(engine)
        sid = frontend.handle("open", seed=3).value
        result = frontend.handle(
            "submit", session_id=sid, relevant_ids=[1]
        )
        assert result.error_kind == "invalid_state"
        assert not result.retriable

    def test_invalid_request(self, engine):
        frontend = SessionFrontEnd(engine)
        sid = frontend.handle("open", seed=3).value
        result = frontend.handle(
            "display", session_id=sid, screens="many"
        )
        assert result.error_kind == "invalid_request"

    def test_stale_session_is_retriable(self, engine):
        frontend = SessionFrontEnd(engine)
        sid = frontend.handle("open", seed=3).value
        engine.rfs.structure_version += 1  # simulate an index rebuild
        result = frontend.handle("display", session_id=sid)
        assert not result.ok
        assert result.error_kind == "stale_session"
        assert result.retriable
        assert "version" in result.error


# ----------------------------------------------------------------------
# QDServer admission control
# ----------------------------------------------------------------------
class _GatedFrontEnd:
    """Stand-in front-end whose handle() blocks on a shared gate."""

    gate = threading.Event()

    def __init__(self, engine, worker_id=""):
        del engine, worker_id

    def handle(self, op, **kwargs):
        del op, kwargs
        assert self.gate.wait(timeout=10.0)
        return FrontEndResult(ok=True, value="done")


@pytest.fixture()
def gated_server(engine, monkeypatch):
    _GatedFrontEnd.gate = threading.Event()
    monkeypatch.setattr(
        "repro.serve.server.SessionFrontEnd", _GatedFrontEnd
    )
    server = QDServer(
        engine, ServeConfig(workers=1, queue_limit=2, drain_timeout_s=0.2)
    )
    yield server
    _GatedFrontEnd.gate.set()
    server.close(drain=False)


def _occupy_worker(server):
    """Park the single worker inside the gated front-end."""
    future = server.submit("display", session_id="x")
    deadline = time.monotonic() + 5.0
    while server.queue_depth > 0 and time.monotonic() < deadline:
        time.sleep(0.001)
    return future


class TestQDServer:
    def test_requires_session_store(self, database):
        with QueryDecompositionEngine.build(
            database, RFS_CONFIG, QDConfig(), seed=SEED
        ) as bare:
            with pytest.raises(ConfigurationError):
                QDServer(bare)

    def test_dialogue_matches_direct_engine(self, database, engine):
        mark = _mark_fn(database)

        def signature(result):
            return [
                (
                    g.leaf_node_id,
                    tuple((i.item_id, i.score) for i in g.items),
                )
                for g in result.groups
            ]

        session = engine.new_session(seed=9)
        shown = session.display(screens=2)
        session.submit(mark(shown))
        expected_shown, expected = shown, signature(session.finalize(40))

        with QDServer(engine, ServeConfig(workers=3)) as server:
            sid = server.request("open", seed=9).value
            response = server.request(
                "display", session_id=sid, screens=2
            )
            assert response.ok
            assert response.value == expected_shown
            assert server.request(
                "submit",
                session_id=sid,
                relevant_ids=mark(response.value),
            ).ok
            final = server.request("finalize", session_id=sid, k=40)
            assert final.ok
            assert signature(final.value) == expected
            assert final.service_s > 0.0
            assert server.stats["completed"] == 4
            assert server.stats["shed"] == 0

    def test_queue_full_sheds_immediately(self, gated_server):
        running = _occupy_worker(gated_server)
        queued = [gated_server.submit("display", session_id="x") for _ in range(2)]
        shed = gated_server.submit("display", session_id="x")
        response = shed.result(timeout=1.0)  # resolved without a worker
        assert response.status == "shed"
        assert response.retriable
        assert "queue_full" in response.error
        assert gated_server.stats["shed"] == 1
        _GatedFrontEnd.gate.set()
        assert running.result(timeout=5.0).ok
        assert all(f.result(timeout=5.0).ok for f in queued)
        assert gated_server.stats["admitted"] == 3

    def test_deadline_expires_in_queue(self, gated_server):
        _occupy_worker(gated_server)
        doomed = gated_server.submit(
            "display", session_id="x", deadline_s=0.01
        )
        time.sleep(0.05)
        _GatedFrontEnd.gate.set()
        response = doomed.result(timeout=5.0)
        assert response.status == "deadline_expired"
        assert response.retriable
        assert response.queue_wait_s > 0.0
        assert gated_server.stats["expired"] == 1

    def test_draining_sheds_new_requests(self, engine):
        server = QDServer(engine, ServeConfig(workers=1))
        assert server.drain() is True
        response = server.submit("display", session_id="x").result(1.0)
        assert response.status == "shed"
        assert "draining" in response.error
        assert not server.accepting
        assert server.close() is True

    def test_close_reports_unfinished_drain(self, gated_server):
        _occupy_worker(gated_server)
        gated_server.submit("display", session_id="x")
        assert gated_server.drain(timeout_s=0.05) is False

    def test_internal_errors_become_responses(self, engine, monkeypatch):
        def boom(self, op, **kwargs):
            raise RuntimeError("kaboom")

        monkeypatch.setattr(SessionFrontEnd, "handle", boom)
        with QDServer(engine, ServeConfig(workers=1)) as server:
            response = server.request("open", seed=1)
        assert response.status == "internal"
        assert "kaboom" in response.error
        assert not response.retriable


# ----------------------------------------------------------------------
# TCP front
# ----------------------------------------------------------------------
class TestTCPServer:
    @pytest.fixture()
    def tcp(self, engine):
        core = QDServer(engine, ServeConfig(workers=2))
        server = serve_tcp(core, "127.0.0.1", 0, background=True)
        yield server
        server.close()

    def _client(self, tcp):
        sock = socket.create_connection(
            tcp.server_address[:2], timeout=5.0
        )
        return sock, sock.makefile("rw", encoding="utf-8")

    def _roundtrip(self, stream, payload):
        stream.write(json.dumps(payload) + "\n")
        stream.flush()
        return json.loads(stream.readline())

    def test_dialogue_over_socket(self, tcp, database):
        mark = _mark_fn(database)
        sock, stream = self._client(tcp)
        try:
            opened = self._roundtrip(stream, {"op": "open", "seed": 4})
            assert opened["status"] == "ok"
            sid = opened["value"]
            shown = self._roundtrip(
                stream,
                {"op": "display", "session_id": sid, "screens": 2},
            )
            assert shown["status"] == "ok"
            submitted = self._roundtrip(
                stream,
                {
                    "op": "submit",
                    "session_id": sid,
                    "relevant_ids": mark(shown["value"]),
                },
            )
            assert submitted["status"] == "ok"
            final = self._roundtrip(
                stream, {"op": "finalize", "session_id": sid, "k": 25}
            )
            assert final["status"] == "ok"
            groups = final["value"]["groups"]
            assert groups and all(g["items"] for g in groups)
        finally:
            sock.close()

    @pytest.mark.parametrize(
        "payload, fragment",
        [
            ({"op": "warp"}, "unknown op"),
            ({"op": "display"}, "session_id"),
            (
                {"op": "open", "seed": 1, "bogus": True},
                "unexpected fields",
            ),
        ],
    )
    def test_request_validation(self, tcp, payload, fragment):
        sock, stream = self._client(tcp)
        try:
            response = self._roundtrip(stream, payload)
            assert response["status"] == "invalid_request"
            assert fragment in response["error"]
        finally:
            sock.close()

    def test_invalid_json_line(self, tcp):
        sock, stream = self._client(tcp)
        try:
            stream.write("this is not json\n")
            stream.flush()
            response = json.loads(stream.readline())
            assert response["status"] == "invalid_request"
        finally:
            sock.close()

    def test_not_found_over_socket(self, tcp):
        sock, stream = self._client(tcp)
        try:
            response = self._roundtrip(
                stream, {"op": "abandon", "session_id": "ghost"}
            )
            assert response["status"] in ("ok", "not_found")
            # abandon of an unknown session is reported, not a crash
            assert isinstance(response["retriable"], bool)
        finally:
            sock.close()
