"""Canonical benchmark records and the noise-aware regression gate.

Covers the ``BENCH_*.json`` schema round-trip, validation failures,
the directory loader, and the :func:`compare_results` threshold logic
the CI ``bench-regress`` job relies on: a real slowdown fails, run
jitter passes, silently dropped metrics/benches fail.
"""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    DEFAULT_MIN_ABS,
    BenchResult,
    BenchSchemaError,
    compare_dirs,
    compare_results,
    format_comparison,
    load_bench_dir,
    load_bench_result,
    machine_fingerprint,
    validate_bench_result,
)


def _result(name="demo", **metrics) -> BenchResult:
    """A small valid record; metrics given as name=(value, kwargs)."""
    result = BenchResult.new(name, {"n": 100})
    for metric, (value, kwargs) in metrics.items():
        result.record(metric, value, **kwargs)
    return result


class TestBenchResultSchema:
    def test_new_stamps_provenance(self):
        result = BenchResult.new("demo", {"n": 1})
        assert result.schema_version == BENCH_SCHEMA_VERSION
        assert result.created_unix > 0
        assert result.git_sha  # sha or "unknown", never empty
        assert result.machine == machine_fingerprint()
        assert "python" in result.machine
        assert "numpy" in result.machine

    def test_record_series_computes_percentiles(self):
        result = BenchResult.new("demo")
        result.record(
            "t", [3.0, 1.0, 2.0], unit="s", higher_is_better=False
        )
        entry = result.metrics["t"]
        assert entry["values"] == [3.0, 1.0, 2.0]
        assert entry["p50"] == 2.0
        assert entry["p95"] == pytest.approx(2.9)
        assert entry["compare"] is True  # direction given

    def test_compare_defaults_follow_direction(self):
        result = BenchResult.new("demo")
        result.record("directionless", 1.0)
        assert result.metrics["directionless"]["compare"] is False
        result.record("directed", 1.0, higher_is_better=True)
        assert result.metrics["directed"]["compare"] is True
        result.record(
            "opted_out", 1.0, higher_is_better=True, compare=False
        )
        assert result.metrics["opted_out"]["compare"] is False

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError, match="empty value series"):
            BenchResult.new("demo").record("m", [])

    def test_write_load_round_trip(self, tmp_path):
        result = _result(
            speedup=(2.5, dict(unit="x", higher_is_better=True)),
            wall_s=(
                [0.2, 0.3],
                dict(unit="s", higher_is_better=False, compare=False),
            ),
        )
        path = result.write(tmp_path)
        assert path.name == "BENCH_demo.json"
        loaded = load_bench_result(path)
        assert loaded.to_dict() == result.to_dict()

    def test_load_bench_dir_keys_by_name(self, tmp_path):
        _result("alpha", m=(1.0, dict(higher_is_better=True))).write(
            tmp_path
        )
        _result("beta", m=(2.0, dict(higher_is_better=True))).write(
            tmp_path
        )
        (tmp_path / "unrelated.json").write_text("{}")  # ignored
        loaded = load_bench_dir(tmp_path)
        assert sorted(loaded) == ["alpha", "beta"]
        assert load_bench_dir(tmp_path / "missing") == {}

    @pytest.mark.parametrize(
        "mutate, match",
        [
            (lambda d: d.pop("schema_version"), "schema_version"),
            (
                lambda d: d.update(schema_version=BENCH_SCHEMA_VERSION + 1),
                "newer than supported",
            ),
            (lambda d: d.update(name=""), "bad name"),
            (lambda d: d.update(metrics="nope"), "must be an object"),
            (
                lambda d: d["metrics"]["m"].update(values=[]),
                "non-empty number list",
            ),
            (
                lambda d: d["metrics"]["m"].pop("p50"),
                "missing numeric 'p50'",
            ),
            (
                lambda d: d["metrics"]["m"].update(higher_is_better="up"),
                "bad 'higher_is_better'",
            ),
        ],
    )
    def test_validation_failures(self, mutate, match):
        data = _result(
            m=(1.0, dict(higher_is_better=True))
        ).to_dict()
        mutate(data)
        with pytest.raises(BenchSchemaError, match=match):
            validate_bench_result(data)

    def test_corrupt_json_file(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("{not json")
        with pytest.raises(BenchSchemaError, match="not valid JSON"):
            load_bench_result(path)


class TestCompareThresholds:
    def _pair(self, base_value, cur_value, **kwargs):
        base = _result(m=(base_value, kwargs))
        cur = _result(m=(cur_value, kwargs))
        return base, cur

    def test_big_drop_in_good_metric_regresses(self):
        base, cur = self._pair(2.0, 1.0, higher_is_better=True)
        (delta,) = compare_results(base, cur)
        assert delta.regression
        assert delta.rel_change == pytest.approx(-0.5)
        assert "REGRESSION" in delta.format()

    def test_small_jitter_passes(self):
        # -10% is well inside the default 35% relative gate.
        base, cur = self._pair(2.0, 1.8, higher_is_better=True)
        (delta,) = compare_results(base, cur)
        assert not delta.regression

    def test_improvement_never_regresses(self):
        base, cur = self._pair(2.0, 9.0, higher_is_better=True)
        (delta,) = compare_results(base, cur)
        assert not delta.regression

    def test_lower_is_better_direction(self):
        base, cur = self._pair(1.0, 2.5, higher_is_better=False)
        (delta,) = compare_results(base, cur)
        assert delta.regression
        base, cur = self._pair(2.5, 1.0, higher_is_better=False)
        (delta,) = compare_results(base, cur)
        assert not delta.regression

    def test_min_abs_floor_suppresses_tiny_absolute_moves(self):
        # 50% relative but only 0.05 absolute: under the 0.08 floor.
        base, cur = self._pair(0.1, 0.05, higher_is_better=True)
        (delta,) = compare_results(base, cur)
        assert abs(delta.current - delta.baseline) < DEFAULT_MIN_ABS
        assert not delta.regression
        # The same relative move above the floor regresses.
        base, cur = self._pair(1.0, 0.5, higher_is_better=True)
        (delta,) = compare_results(base, cur)
        assert delta.regression

    def test_metric_level_min_abs_overrides_global(self):
        base, cur = self._pair(
            1.0, 0.5, higher_is_better=True, min_abs=0.6
        )
        (delta,) = compare_results(base, cur)
        assert not delta.regression  # 0.5 absolute < 0.6 floor

    def test_custom_rel_threshold(self):
        base, cur = self._pair(2.0, 1.8, higher_is_better=True)
        (delta,) = compare_results(base, cur, rel_threshold=0.05)
        assert delta.regression

    def test_times_skipped_across_machines(self):
        base = _result(
            wall_s=(1.0, dict(higher_is_better=False, compare=False))
        )
        cur = _result(
            wall_s=(99.0, dict(higher_is_better=False, compare=False))
        )
        cur.machine = {**cur.machine, "hostname": "elsewhere"}
        assert compare_results(base, cur) == []
        # Same machine (or --include-times): times are informational
        # but still diffed.
        cur.machine = dict(base.machine)
        (delta,) = compare_results(base, cur)
        assert delta.note == "informational"

    def test_missing_comparable_metric_regresses(self):
        base = _result(
            speedup=(2.0, dict(higher_is_better=True)),
        )
        cur = BenchResult.new("demo", {"n": 100})  # metric dropped
        (delta,) = compare_results(base, cur)
        assert delta.regression
        assert delta.note == "missing from current run"

    def test_new_current_metrics_are_ignored(self):
        base = _result(m=(1.0, dict(higher_is_better=True)))
        cur = _result(
            m=(1.0, dict(higher_is_better=True)),
            extra=(5.0, dict(higher_is_better=True)),
        )
        deltas = compare_results(base, cur)
        assert [d.metric for d in deltas] == ["m"]


class TestCompareDirs:
    def test_whole_missing_bench_is_a_regression(self, tmp_path):
        base_dir = tmp_path / "base"
        cur_dir = tmp_path / "cur"
        _result("a", m=(1.0, dict(higher_is_better=True))).write(base_dir)
        _result("b", m=(1.0, dict(higher_is_better=True))).write(base_dir)
        _result("a", m=(1.0, dict(higher_is_better=True))).write(cur_dir)
        deltas, missing = compare_dirs(base_dir, cur_dir)
        assert missing == ["b"]
        assert not any(d.regression for d in deltas)
        table = format_comparison(deltas, missing)
        assert "missing from current results: REGRESSION" in table

    def test_identical_dirs_pass(self, tmp_path):
        base_dir = tmp_path / "base"
        cur_dir = tmp_path / "cur"
        result = _result("a", m=(1.0, dict(higher_is_better=True)))
        result.write(base_dir)
        result.write(cur_dir)
        deltas, missing = compare_dirs(base_dir, cur_dir)
        assert missing == []
        assert all(not d.regression for d in deltas)


class TestBenchCompareScript:
    """The CLI gate around :func:`compare_dirs` (exit codes)."""

    @pytest.fixture()
    def script_main(self):
        import importlib.util
        import sys
        from pathlib import Path

        path = (
            Path(__file__).resolve().parent.parent
            / "scripts"
            / "bench_compare.py"
        )
        spec = importlib.util.spec_from_file_location(
            "bench_compare", path
        )
        module = importlib.util.module_from_spec(spec)
        sys.modules["bench_compare"] = module
        spec.loader.exec_module(module)
        yield module.main
        sys.modules.pop("bench_compare", None)

    def test_exit_codes(self, script_main, tmp_path, capsys):
        base_dir = tmp_path / "base"
        cur_dir = tmp_path / "cur"
        _result("a", m=(2.0, dict(higher_is_better=True))).write(base_dir)
        _result("a", m=(2.0, dict(higher_is_better=True))).write(cur_dir)

        args = ["--baseline", str(base_dir), "--current", str(cur_dir)]
        assert script_main(args) == 0

        _result("a", m=(0.5, dict(higher_is_better=True))).write(cur_dir)
        assert script_main(args) == 1  # 75% drop regresses

        assert script_main(args + ["--validate-only"]) == 0
        (cur_dir / "BENCH_bad.json").write_text("{broken")
        assert script_main(args + ["--validate-only"]) == 2
        assert script_main(args) == 2  # schema error beats comparison
        capsys.readouterr()

    def test_missing_baseline_dir(self, script_main, tmp_path, capsys):
        cur_dir = tmp_path / "cur"
        _result("a", m=(1.0, dict(higher_is_better=True))).write(cur_dir)
        code = script_main(
            ["--baseline", str(tmp_path / "none"),
             "--current", str(cur_dir)]
        )
        assert code == 2
        capsys.readouterr()
