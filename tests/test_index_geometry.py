"""Tests for MBR geometry and the disk-access model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.index.diskmodel import DiskAccessCounter
from repro.index.geometry import MBR


def box(lo, hi):
    return MBR(np.asarray(lo, dtype=float), np.asarray(hi, dtype=float))


class TestMBRConstruction:
    def test_from_point_is_degenerate(self):
        b = MBR.from_point(np.array([1.0, 2.0]))
        assert np.array_equal(b.lo, b.hi)
        assert b.area() == 0.0

    def test_from_points_tight(self):
        pts = np.array([[0.0, 5.0], [2.0, 1.0], [1.0, 3.0]])
        b = MBR.from_points(pts)
        assert np.array_equal(b.lo, [0.0, 1.0])
        assert np.array_equal(b.hi, [2.0, 5.0])

    def test_from_points_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MBR.from_points(np.empty((0, 2)))

    def test_lo_above_hi_rejected(self):
        with pytest.raises(ConfigurationError):
            box([1.0, 0.0], [0.0, 1.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            MBR(np.zeros(2), np.zeros(3))

    def test_union_of_list(self):
        b = MBR.union_of([box([0, 0], [1, 1]), box([2, -1], [3, 0.5])])
        assert np.array_equal(b.lo, [0, -1])
        assert np.array_equal(b.hi, [3, 1])

    def test_union_of_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            MBR.union_of([])


class TestMBRGeometry:
    def test_area_and_margin(self):
        b = box([0, 0], [2, 3])
        assert b.area() == pytest.approx(6.0)
        assert b.margin() == pytest.approx(5.0)

    def test_diagonal(self):
        b = box([0, 0], [3, 4])
        assert b.diagonal() == pytest.approx(5.0)

    def test_center(self):
        assert np.array_equal(box([0, 0], [2, 4]).center(), [1, 2])

    def test_log_area_monotone_in_extent(self):
        small = box([0, 0], [1, 1])
        big = box([0, 0], [2, 2])
        assert big.log_area() > small.log_area()

    def test_enlargement_zero_for_contained(self):
        outer = box([0, 0], [10, 10])
        inner = box([2, 2], [3, 3])
        assert outer.enlargement(inner) == pytest.approx(0.0)

    def test_enlargement_positive_for_outside(self):
        a = box([0, 0], [1, 1])
        b = box([5, 5], [6, 6])
        assert a.enlargement(b) > 0

    def test_union_commutes(self):
        a = box([0, 0], [1, 1])
        b = box([2, 2], [3, 3])
        assert a.union(b) == b.union(a)

    def test_intersects_cases(self):
        a = box([0, 0], [2, 2])
        assert a.intersects(box([1, 1], [3, 3]))
        assert a.intersects(box([2, 2], [3, 3]))  # touching counts
        assert not a.intersects(box([3, 3], [4, 4]))

    def test_overlap_measure_zero_when_disjoint(self):
        assert box([0, 0], [1, 1]).overlap_measure(
            box([2, 2], [3, 3])
        ) == 0.0

    def test_overlap_measure_positive_when_overlapping(self):
        assert box([0, 0], [2, 2]).overlap_measure(
            box([1, 1], [3, 3])
        ) > 0.0

    def test_contains_point(self):
        b = box([0, 0], [1, 1])
        assert b.contains_point(np.array([0.5, 0.5]))
        assert b.contains_point(np.array([1.0, 1.0]))  # boundary
        assert not b.contains_point(np.array([1.1, 0.5]))

    def test_min_distance_inside_is_zero(self):
        assert box([0, 0], [2, 2]).min_distance(
            np.array([1.0, 1.0])
        ) == 0.0

    def test_min_distance_outside(self):
        assert box([0, 0], [1, 1]).min_distance(
            np.array([4.0, 5.0])
        ) == pytest.approx(5.0)

    def test_center_distance(self):
        assert box([0, 0], [2, 2]).center_distance(
            np.array([4.0, 5.0])
        ) == pytest.approx(5.0)

    def test_equality_and_hash(self):
        a = box([0, 0], [1, 1])
        b = box([0, 0], [1, 1])
        assert a == b
        assert hash(a) == hash(b)
        assert a != box([0, 0], [1, 2])


class TestDiskAccessCounter:
    def test_unbuffered_counts_every_access(self):
        counter = DiskAccessCounter()
        for _ in range(3):
            counter.access(7)
        assert counter.physical_reads == 3
        assert counter.logical_reads == 3

    def test_buffer_absorbs_repeats(self):
        counter = DiskAccessCounter(buffer_pages=2)
        counter.access(1)
        counter.access(1)
        counter.access(1)
        assert counter.physical_reads == 1
        assert counter.logical_reads == 3

    def test_lru_eviction(self):
        counter = DiskAccessCounter(buffer_pages=2)
        counter.access(1)
        counter.access(2)
        counter.access(3)  # evicts 1
        counter.access(1)  # miss again
        assert counter.physical_reads == 4

    def test_lru_touch_refreshes(self):
        counter = DiskAccessCounter(buffer_pages=2)
        counter.access(1)
        counter.access(2)
        counter.access(1)  # refresh 1
        counter.access(3)  # evicts 2, not 1
        assert counter.access(1) is False  # hit

    def test_categories(self):
        counter = DiskAccessCounter()
        counter.access(1, "feedback")
        counter.access(2, "feedback")
        counter.access(3, "knn")
        snap = counter.snapshot()
        assert snap["reads[feedback]"] == 2
        assert snap["reads[knn]"] == 1

    def test_buffer_hits_attributed_per_category(self):
        """Logical per-category counts include buffer hits; physical
        counts do not."""
        counter = DiskAccessCounter(buffer_pages=4)
        counter.access(1, "feedback")
        counter.access(1, "feedback")  # buffer hit
        counter.access(1, "knn")       # hit, different category
        assert counter.per_category == {"feedback": 1}
        assert counter.per_category_logical == {
            "feedback": 2, "knn": 1
        }
        snap = counter.snapshot()
        assert snap["reads[feedback]"] == 1
        assert snap["logical_reads[feedback]"] == 2
        assert snap["logical_reads[knn]"] == 1

    def test_reset(self):
        counter = DiskAccessCounter(buffer_pages=2)
        counter.access(1, "knn")
        counter.reset()
        assert counter.physical_reads == 0
        assert counter.logical_reads == 0
        assert counter.per_category == {}
        assert counter.per_category_logical == {}
        assert counter.snapshot() == {
            "physical_reads": 0, "logical_reads": 0, "bytes_read": 0
        }
