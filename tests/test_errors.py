"""Tests for the exception hierarchy."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.ConfigurationError,
            errors.FeatureExtractionError,
            errors.InvalidImageError,
            errors.ClusteringError,
            errors.IndexError_,
            errors.EmptyIndexError,
            errors.NodeNotFoundError,
            errors.QueryError,
            errors.SessionStateError,
            errors.DatasetError,
            errors.UnknownConceptError,
            errors.EvaluationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_invalid_image_is_feature_extraction_error(self):
        assert issubclass(
            errors.InvalidImageError, errors.FeatureExtractionError
        )

    def test_session_state_is_query_error(self):
        assert issubclass(errors.SessionStateError, errors.QueryError)

    def test_unknown_concept_is_dataset_error(self):
        assert issubclass(
            errors.UnknownConceptError, errors.DatasetError
        )

    def test_node_not_found_is_index_error(self):
        assert issubclass(errors.NodeNotFoundError, errors.IndexError_)

    def test_index_error_does_not_shadow_builtin(self):
        assert not issubclass(errors.IndexError_, IndexError)

    def test_one_catch_handles_all(self):
        with pytest.raises(errors.ReproError):
            raise errors.SessionStateError("out of order")


class TestPublicAPI:
    def test_version_string(self):
        import repro

        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name
