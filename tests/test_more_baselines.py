"""Tests for the Fagin merge baseline, the full-metric QPM mode, and the
target-search paradigm."""

import numpy as np
import pytest

from repro.baselines.fagin import FaginMerge
from repro.baselines.qpm import QueryPointMovement
from repro.config import RFSConfig
from repro.core.target_search import (
    TargetSearchSession,
    run_target_search,
)
from repro.datasets.build import build_synthetic_database
from repro.errors import ConfigurationError, QueryError, SessionStateError
from repro.index.rfs import RFSStructure


@pytest.fixture(scope="module")
def feature_db():
    return build_synthetic_database(800, n_categories=25, dims=37, seed=4)


@pytest.fixture(scope="module")
def feature_rfs(feature_db):
    return RFSStructure.build(
        feature_db.features,
        RFSConfig(node_max_entries=60, node_min_entries=30),
        seed=2,
    )


class TestFaginMerge:
    def test_matches_brute_force_aggregate(self, feature_db):
        technique = FaginMerge(feature_db, seed=0)
        technique.begin([10])
        got = technique.retrieve(15).ids()
        scores = technique._score(feature_db.features)
        truth = np.argsort(scores, kind="stable")[:15]
        assert sorted(got) == sorted(int(i) for i in truth)

    def test_instance_optimal_depth(self, feature_db):
        """FA stops sorted access far before scanning everything."""
        technique = FaginMerge(feature_db, seed=0)
        technique.begin([10])
        technique.retrieve(10)
        assert technique.sorted_access_depth < feature_db.size / 4

    def test_k_larger_than_database(self, feature_db):
        technique = FaginMerge(feature_db, seed=0)
        technique.begin([0])
        assert len(technique.retrieve(10_000)) == feature_db.size

    def test_example_ranks_first(self, feature_db):
        technique = FaginMerge(feature_db, seed=0)
        technique.begin([42])
        assert technique.retrieve(1).ids() == [42]

    def test_invalid_k(self, feature_db):
        technique = FaginMerge(feature_db, seed=0)
        technique.begin([0])
        with pytest.raises(QueryError):
            technique.retrieve(0)

    def test_subsystem_confinement(self, rendered_db):
        """Fagin merging is still a single-query technique: it misses
        scattered subconcepts like the rest of the family."""
        from repro.datasets.queryset import get_query
        from repro.eval.protocol import run_baseline_session

        technique = FaginMerge(rendered_db, seed=0)
        records = run_baseline_session(
            technique, get_query("bird"), rounds=3, seed=0,
            example_subconcept=0,
        )
        assert records[-1].gtir < 1.0

    def test_wrong_dims_config_rejected(self, feature_db):
        from repro.config import FeatureConfig

        with pytest.raises(QueryError):
            FaginMerge(
                feature_db,
                feature_config=FeatureConfig(
                    color_dims=3, texture_dims=4, edge_dims=18,
                    image_size=32, wavelet_levels=1,
                ),
            )


class TestQPMFullMetric:
    def test_full_metric_runs(self, feature_db):
        technique = QueryPointMovement(feature_db, metric="full", seed=0)
        technique.begin([0])
        technique.feedback([1, 2, 3, 4, 5])
        assert len(technique.retrieve(10)) == 10

    def test_full_metric_uses_matrix(self, feature_db):
        technique = QueryPointMovement(feature_db, metric="full", seed=0)
        technique.begin([0])
        technique.feedback([1, 2, 3, 4])
        assert technique._matrix is not None
        # Symmetric positive (trace-normalised).
        m = technique._matrix
        assert np.allclose(m, m.T)
        assert np.trace(m) == pytest.approx(feature_db.dims)

    def test_single_example_falls_back(self, feature_db):
        technique = QueryPointMovement(feature_db, metric="full", seed=0)
        technique.begin([0])
        assert technique._matrix is None

    def test_invalid_metric_rejected(self, feature_db):
        with pytest.raises(ConfigurationError):
            QueryPointMovement(feature_db, metric="circular")

    def test_full_beats_diagonal_on_correlated_cluster(self, rng):
        """The matrix form exploits correlated relevant dimensions: a
        relevant cluster elongated along x=y inside an isotropic
        distractor cloud is invisible to per-dimension weights (both
        variances are large) but obvious to the inverse covariance."""
        t = rng.uniform(-3, 3, size=(40, 1))
        relevant = t * np.array([[1.0, 1.0]]) + rng.normal(
            0, 0.08, size=(40, 2)
        )
        distractors = rng.normal(0, 1.6, size=(260, 2))
        base = np.vstack([relevant, distractors])
        from repro.datasets.database import ImageDatabase
        from repro.features.normalize import FeatureNormalizer

        norm = FeatureNormalizer().fit(base)
        db = ImageDatabase(
            features=norm.transform(base),
            raw_features=base,
            labels=np.array([0] * 40 + [1] * 260),
            category_names=["target", "rest"],
            normalizer=norm,
        )

        def hits(metric: str) -> int:
            technique = QueryPointMovement(
                db, metric=metric, seed=0, ridge=0.05
            )
            technique.begin([0])
            technique.feedback(list(range(1, 12)))
            got = technique.retrieve(40).ids()
            return sum(1 for i in got if i < 40)

        assert hits("full") > hits("diagonal") + 5


class TestTargetSearch:
    def test_finds_targets(self, feature_rfs, rng):
        found = 0
        for target in rng.integers(0, 800, size=10):
            result = run_target_search(
                feature_rfs, int(target), seed=int(target)
            )
            found += result.found
        assert found >= 8

    def test_sees_small_fraction(self, feature_rfs):
        result = run_target_search(feature_rfs, 123, seed=1)
        assert result.found
        assert result.images_seen < feature_rfs.root.size / 3

    def test_trail_ends_at_target_when_found(self, feature_rfs):
        result = run_target_search(feature_rfs, 55, seed=2)
        if result.found:
            assert result.trail[-1] == 55

    def test_round_budget_respected(self, feature_rfs):
        result = run_target_search(
            feature_rfs, 7, max_rounds=1, seed=3
        )
        assert result.rounds <= 1

    def test_invalid_target_rejected(self, feature_rfs):
        with pytest.raises(QueryError):
            run_target_search(feature_rfs, 10**9)

    def test_session_state_machine(self, feature_rfs):
        session = TargetSearchSession(feature_rfs, seed=0)
        shown = session.display()
        assert shown
        with pytest.raises(SessionStateError):
            session.pick(10**9)  # not on screen
        session.pick(shown[0])
        session.finished = True
        with pytest.raises(SessionStateError):
            session.display()

    def test_invalid_display_size(self, feature_rfs):
        with pytest.raises(QueryError):
            TargetSearchSession(feature_rfs, display_size=1)

    def test_custom_pick_function(self, feature_rfs):
        """A user who always clicks the first image still terminates."""
        result = run_target_search(
            feature_rfs, 200, max_rounds=5,
            pick_fn=lambda shown: shown[0], seed=4,
        )
        assert result.rounds <= 5


class TestNoiseSweep:
    def test_small_sweep(self, engine):
        from repro.datasets.queryset import get_query
        from repro.eval.robustness import run_noise_sweep

        result = run_noise_sweep(
            engine,
            noise_levels=((0.0, 0.0), (0.4, 0.1)),
            queries=[get_query("bird")],
            trials=1,
            seed=0,
        )
        assert len(result.points) == 2
        clean, noisy = result.points
        assert clean.qd_precision >= noisy.qd_precision - 0.2
        assert "robustness" in result.format()

    def test_empty_levels_rejected(self, engine):
        from repro.errors import EvaluationError
        from repro.eval.robustness import run_noise_sweep

        with pytest.raises(EvaluationError):
            run_noise_sweep(engine, noise_levels=())
