"""Tests for the video retrieval extension."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.video.keyframes import select_keyframes
from repro.video.retrieval import VideoDatabase, VideoSearchEngine
from repro.video.shots import detect_shot_boundaries, frame_differences
from repro.video.synthesis import ShotSpec, SyntheticClip, render_clip


@pytest.fixture(scope="module")
def two_shot_clip():
    return render_clip([("bird_owl", 10), ("rose_red", 8)], seed=0)


class TestSynthesis:
    def test_frame_count_and_boundaries(self, two_shot_clip):
        assert two_shot_clip.n_frames == 18
        assert two_shot_clip.shot_boundaries == [10]
        assert two_shot_clip.shot_categories == ["bird_owl", "rose_red"]

    def test_shot_ranges(self, two_shot_clip):
        assert two_shot_clip.shot_ranges() == [(0, 10), (10, 18)]

    def test_frames_valid(self, two_shot_clip):
        frames = two_shot_clip.frames
        assert frames.min() >= 0.0 and frames.max() <= 1.0
        assert np.isfinite(frames).all()

    def test_within_shot_frames_similar(self, two_shot_clip):
        frames = two_shot_clip.frames
        within = np.abs(frames[1] - frames[0]).mean()
        across = np.abs(frames[10] - frames[9]).mean()
        assert across > 3 * within

    def test_deterministic(self):
        a = render_clip([("bird_owl", 5)], seed=3)
        b = render_clip([("bird_owl", 5)], seed=3)
        assert np.array_equal(a.frames, b.frames)

    def test_empty_clip_rejected(self):
        with pytest.raises(DatasetError):
            render_clip([], seed=0)

    def test_zero_frame_shot_rejected(self):
        with pytest.raises(DatasetError):
            ShotSpec("bird_owl", 0)

    def test_single_shot_has_no_boundaries(self):
        clip = render_clip([("rose_red", 6)], seed=1)
        assert clip.shot_boundaries == []
        assert clip.n_shots == 1


class TestShotDetection:
    def test_frame_differences_shape(self, two_shot_clip):
        diffs = frame_differences(two_shot_clip.frames)
        assert diffs.shape == (17,)
        assert np.all(diffs >= 0)

    def test_cut_is_the_peak(self, two_shot_clip):
        diffs = frame_differences(two_shot_clip.frames)
        assert int(np.argmax(diffs)) == 9  # transition 9 -> 10

    def test_detects_planted_cuts(self):
        for seed in range(4):
            clip = render_clip(
                [("bird_owl", 9), ("computer_desktop", 11),
                 ("mountain_snow", 8)],
                seed=seed,
            )
            assert detect_shot_boundaries(clip.frames) == (
                clip.shot_boundaries
            ), seed

    def test_static_clip_has_no_cuts(self):
        clip = render_clip([("rose_red", 20)], seed=2)
        assert detect_shot_boundaries(clip.frames) == []

    def test_min_shot_length_suppression(self, two_shot_clip):
        # An absurd minimum suppresses even real cuts.
        assert detect_shot_boundaries(
            two_shot_clip.frames, min_shot_length=100
        ) in ([], [10])

    def test_short_inputs(self):
        single = np.zeros((1, 8, 8, 3))
        assert frame_differences(single).shape == (0,)
        assert detect_shot_boundaries(single) == []

    def test_bad_shapes_rejected(self):
        with pytest.raises(DatasetError):
            frame_differences(np.zeros((4, 8, 8)))

    def test_invalid_params_rejected(self, two_shot_clip):
        with pytest.raises(DatasetError):
            detect_shot_boundaries(two_shot_clip.frames, sensitivity=0)
        with pytest.raises(DatasetError):
            detect_shot_boundaries(
                two_shot_clip.frames, min_shot_length=0
            )


class TestKeyframes:
    def test_one_or_more_per_shot(self, two_shot_clip):
        keyframes = select_keyframes(
            two_shot_clip.frames, two_shot_clip.shot_ranges(), seed=0
        )
        assert len(keyframes) == 2
        for (start, end), frames in zip(
            two_shot_clip.shot_ranges(), keyframes
        ):
            assert frames
            assert all(start <= f < end for f in frames)

    def test_respects_max_keyframes(self, two_shot_clip):
        keyframes = select_keyframes(
            two_shot_clip.frames,
            two_shot_clip.shot_ranges(),
            max_keyframes=1,
            seed=0,
        )
        assert all(len(frames) == 1 for frames in keyframes)

    def test_single_frame_shot(self):
        clip = render_clip([("rose_red", 1)], seed=0)
        keyframes = select_keyframes(
            clip.frames, clip.shot_ranges(), seed=0
        )
        assert keyframes == [[0]]

    def test_invalid_range_rejected(self, two_shot_clip):
        with pytest.raises(DatasetError):
            select_keyframes(
                two_shot_clip.frames, [(0, 999)], seed=0
            )

    def test_invalid_max_rejected(self, two_shot_clip):
        with pytest.raises(DatasetError):
            select_keyframes(
                two_shot_clip.frames,
                two_shot_clip.shot_ranges(),
                max_keyframes=0,
            )


@pytest.fixture(scope="module")
def video_db():
    cats = ["bird_owl", "rose_red", "computer_desktop",
            "mountain_snow", "sport_sailing", "horse_polo"]
    rng = np.random.default_rng(3)
    clips = []
    for i in range(14):
        c1, c2 = rng.choice(cats, size=2, replace=False)
        clips.append(
            render_clip([(str(c1), 8), (str(c2), 8)], seed=100 + i)
        )
    return clips, VideoDatabase.ingest(clips, seed=5)


class TestVideoDatabase:
    def test_ingest_counts(self, video_db):
        clips, db = video_db
        assert db.size >= 2 * len(clips)  # >= one keyframe per shot
        assert len(db.records) == db.size

    def test_records_reference_real_frames(self, video_db):
        clips, db = video_db
        for record in db.records:
            clip = clips[record.clip_id]
            assert 0 <= record.frame_index < clip.n_frames

    def test_keyframe_categories_match_ground_truth(self, video_db):
        clips, db = video_db
        correct = 0
        for record in db.records:
            clip = clips[record.clip_id]
            for (start, end), category in zip(
                clip.shot_ranges(), clip.shot_categories
            ):
                if start <= record.frame_index < end:
                    correct += category == record.category
                    break
        assert correct / len(db.records) > 0.9

    def test_ground_truth_shot_mode(self, video_db):
        clips, _ = video_db
        db = VideoDatabase.ingest(
            clips[:3], use_ground_truth_shots=True, seed=1
        )
        assert db.size >= 6

    def test_empty_rejected(self):
        with pytest.raises(DatasetError):
            VideoDatabase.ingest([])

    def test_keyframes_of_category(self, video_db):
        _, db = video_db
        ids = db.keyframes_of_category("rose_red")
        assert all(db.category_of(i) == "rose_red" for i in ids)


class TestVideoSearch:
    def test_search_finds_target_clips(self, video_db):
        clips, db = video_db
        engine = VideoSearchEngine(db, seed=6)
        target = "rose_red"
        truth = {
            cid
            for cid, clip in enumerate(clips)
            if target in clip.shot_categories
        }

        def mark(shown):
            return [i for i in shown if db.category_of(i) == target]

        ranked = engine.search(mark, k=8, seed=7)
        top = [cid for cid, _ in ranked[: len(truth)]]
        hits = sum(1 for cid in top if cid in truth)
        assert hits / max(1, len(top)) > 0.6

    def test_results_sorted_by_score(self, video_db):
        _, db = video_db
        engine = VideoSearchEngine(db, seed=6)
        target = "bird_owl"

        def mark(shown):
            return [i for i in shown if db.category_of(i) == target]

        ranked = engine.search(mark, k=6, seed=8)
        scores = [s for _, s in ranked]
        assert scores == sorted(scores)

    def test_tiny_database_rejected(self):
        clip = render_clip([("rose_red", 3)], seed=0)
        db = VideoDatabase.ingest([clip], seed=0)
        with pytest.raises(DatasetError):
            VideoSearchEngine(db, seed=0)
