"""Tests for the STR bulk load and the terminal preview helpers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.imaging.preview import ansi_preview, ascii_preview
from repro.imaging.scenes import render_scene
from repro.index.rstar import RStarTree


class TestStrBulkLoad:
    def test_sizes_and_invariants(self, rng):
        tree = RStarTree(dims=5, max_entries=10)
        tree.bulk_load_str(rng.normal(size=(437, 5)))
        assert len(tree) == 437
        tree.validate()

    def test_knn_matches_brute_force(self, rng):
        pts = rng.normal(size=(400, 6))
        tree = RStarTree(dims=6, max_entries=16)
        tree.bulk_load_str(pts)
        query = rng.normal(size=6)
        got = sorted(i for _, i in tree.knn(query, 9))
        dists = np.linalg.norm(pts - query, axis=1)
        truth = sorted(
            int(i) for i in np.argsort(dists, kind="stable")[:9]
        )
        assert got == truth

    def test_leaves_well_packed(self, rng):
        """STR packs leaves densely (recursive tiling keeps fill high)."""
        tree = RStarTree(dims=3, max_entries=10)
        tree.bulk_load_str(rng.normal(size=(95, 3)))
        sizes = [len(leaf.entries) for leaf in tree.iter_leaves()]
        assert sum(sizes) == 95
        assert max(sizes) <= 10
        assert np.mean(sizes) >= 6.0  # >= 60% average fill

    def test_deterministic(self, rng):
        pts = rng.normal(size=(200, 4))
        def leaf_sets(tree):
            return sorted(
                tuple(sorted(e.item_id for e in leaf.entries))
                for leaf in tree.iter_leaves()
            )
        a = RStarTree(dims=4, max_entries=12)
        a.bulk_load_str(pts)
        b = RStarTree(dims=4, max_entries=12)
        b.bulk_load_str(pts)
        assert leaf_sets(a) == leaf_sets(b)

    def test_custom_sort_dims(self, rng):
        pts = rng.normal(size=(80, 3))
        tree = RStarTree(dims=3, max_entries=8)
        tree.bulk_load_str(pts, sort_dims=[2, 0])
        tree.validate()

    def test_custom_ids(self, rng):
        pts = rng.normal(size=(30, 2))
        tree = RStarTree(dims=2, max_entries=8)
        tree.bulk_load_str(pts, item_ids=[100 + i for i in range(30)])
        got = {i for _, i in tree.knn(np.zeros(2), 30)}
        assert got == {100 + i for i in range(30)}

    def test_zero_points_rejected(self):
        tree = RStarTree(dims=2)
        with pytest.raises(ConfigurationError):
            tree.bulk_load_str(np.empty((0, 2)))

    def test_id_mismatch_rejected(self, rng):
        tree = RStarTree(dims=2)
        with pytest.raises(ConfigurationError):
            tree.bulk_load_str(rng.normal(size=(5, 2)), item_ids=[1])

    def test_single_point(self):
        tree = RStarTree(dims=2)
        tree.bulk_load_str(np.array([[0.1, 0.2]]))
        assert tree.height == 1
        assert len(tree) == 1

    def test_str_vs_clustering_margin(self, rng):
        """On clustered data the clustering load yields tighter leaves
        (lower total margin) than coordinate tiling — the reason it is
        the default for the RFS structure."""
        centers = rng.normal(0, 10, size=(8, 4))
        pts = np.vstack([
            rng.normal(c, 0.3, size=(50, 4)) for c in centers
        ])
        def total_leaf_margin(tree):
            return sum(
                leaf.mbr().margin() for leaf in tree.iter_leaves()
            )
        str_tree = RStarTree(dims=4, max_entries=25)
        str_tree.bulk_load_str(pts)
        cluster_tree = RStarTree(dims=4, max_entries=25)
        cluster_tree.bulk_load(pts, seed=0)
        assert total_leaf_margin(cluster_tree) <= total_leaf_margin(
            str_tree
        )


class TestPreview:
    def test_ascii_dimensions(self):
        img = render_scene("rose_red", 32, np.random.default_rng(0))
        art = ascii_preview(img, width=24)
        lines = art.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 24 for line in lines)

    def test_ascii_uses_ramp(self):
        dark = np.zeros((8, 8, 3))
        bright = np.ones((8, 8, 3))
        assert set(ascii_preview(dark, width=8)) <= {" ", "\n"}
        assert "@" in ascii_preview(bright, width=8)

    def test_ansi_contains_escape_codes(self):
        img = render_scene("rose_red", 32, np.random.default_rng(0))
        art = ansi_preview(img, width=16)
        assert "\x1b[38;2;" in art
        assert art.endswith("\x1b[0m")
        assert len(art.splitlines()) == 8

    def test_invalid_image_rejected(self):
        from repro.errors import InvalidImageError

        with pytest.raises(InvalidImageError):
            ascii_preview(np.zeros((8, 8)))
