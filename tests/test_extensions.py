"""Tests for the extension modules: deletion, serialization, alternative
hierarchies, client/server model, feature-family weighting, CLI."""

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.config import FeatureConfig, RFSConfig
from repro.core.clientserver import (
    ClientPayload,
    client_payload,
    compare_deployments,
)
from repro.errors import ClusteringError, ConfigurationError, DatasetError
from repro.index.hierarchies import build_hkmeans_hierarchy
from repro.index.rfs import RFSStructure
from repro.index.rstar import RStarTree
from repro.index.serialize import load_rfs, save_rfs
from repro.retrieval.weighting import FamilyWeights


@pytest.fixture(scope="module")
def feats():
    return np.random.default_rng(11).normal(size=(600, 10))


@pytest.fixture(scope="module")
def built_rfs(feats):
    cfg = RFSConfig(node_max_entries=50, node_min_entries=25)
    return RFSStructure.build(feats, cfg, seed=4)


class TestRStarDelete:
    def test_delete_then_absent(self, rng):
        pts = rng.normal(size=(120, 3))
        tree = RStarTree(dims=3, max_entries=6)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        assert tree.delete(pts[7], 7)
        assert len(tree) == 119
        ids = {i for _, i in tree.knn(pts[7], 119)}
        assert 7 not in ids
        tree.validate()

    def test_delete_missing_returns_false(self, rng):
        tree = RStarTree(dims=2, max_entries=4)
        tree.insert(np.zeros(2), 0)
        assert not tree.delete(np.ones(2), 1)
        assert len(tree) == 1

    def test_delete_wrong_dims_rejected(self):
        tree = RStarTree(dims=3)
        with pytest.raises(ConfigurationError):
            tree.delete(np.zeros(2), 0)

    def test_delete_all_empties_tree(self, rng):
        pts = rng.normal(size=(40, 2))
        tree = RStarTree(dims=2, max_entries=5)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        for i, p in enumerate(pts):
            assert tree.delete(p, i)
        assert len(tree) == 0
        tree.validate()

    def test_interleaved_insert_delete_keeps_knn_exact(self, rng):
        tree = RStarTree(dims=3, max_entries=6)
        alive = {}
        next_id = 0
        for step in range(300):
            if alive and rng.random() < 0.4:
                victim = list(alive)[int(rng.integers(len(alive)))]
                assert tree.delete(alive.pop(victim), victim)
            else:
                p = rng.normal(size=3)
                tree.insert(p, next_id)
                alive[next_id] = p
                next_id += 1
        tree.validate()
        assert len(tree) == len(alive)
        if alive:
            q = rng.normal(size=3)
            pts = np.array(list(alive.values()))
            ids = list(alive)
            d = np.linalg.norm(pts - q, axis=1)
            truth = sorted(
                ids[j] for j in np.argsort(d, kind="stable")[:5]
            )
            got = sorted(i for _, i in tree.knn(q, 5))
            assert got == truth

    def test_root_chain_shortened(self, rng):
        pts = rng.normal(size=(60, 2))
        tree = RStarTree(dims=2, max_entries=4)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        tall = tree.height
        for i in range(55):
            tree.delete(pts[i], i)
        assert tree.height <= tall
        tree.validate()


class TestSerialization:
    def test_roundtrip_preserves_structure(self, built_rfs, feats,
                                           tmp_path):
        path = tmp_path / "rfs.npz"
        save_rfs(built_rfs, path)
        loaded = load_rfs(path, feats)
        assert loaded.root.size == built_rfs.root.size
        assert sorted(loaded.nodes) == sorted(built_rfs.nodes)
        for node_id in built_rfs.nodes:
            a = built_rfs.get_node(node_id)
            b = loaded.get_node(node_id)
            assert np.array_equal(a.item_ids, b.item_ids)
            assert a.representatives == b.representatives
            assert a.level == b.level
            assert np.allclose(a.center, b.center)

    def test_loaded_structure_answers_queries(self, built_rfs, feats,
                                              tmp_path):
        path = tmp_path / "rfs.npz"
        save_rfs(built_rfs, path)
        loaded = load_rfs(path, feats)
        leaf = loaded.leaf_of_item(3)
        got = loaded.localized_knn(leaf, feats[3], 3)
        assert got[0][1] == 3

    def test_loaded_routing_consistent(self, built_rfs, feats, tmp_path):
        path = tmp_path / "rfs.npz"
        save_rfs(built_rfs, path)
        loaded = load_rfs(path, feats)
        for node in loaded.iter_nodes():
            if node.is_leaf:
                continue
            for rep in node.representatives:
                child = node.child_of_representative(rep)
                assert rep in child.item_ids

    def test_config_preserved(self, built_rfs, feats, tmp_path):
        path = tmp_path / "rfs.npz"
        save_rfs(built_rfs, path)
        loaded = load_rfs(path, feats)
        assert loaded.config.node_max_entries == 50
        assert loaded.config.node_min_entries == 25

    def test_dim_mismatch_rejected(self, built_rfs, tmp_path):
        path = tmp_path / "rfs.npz"
        save_rfs(built_rfs, path)
        with pytest.raises(DatasetError):
            load_rfs(path, np.zeros((600, 99)))

    def test_missing_file_rejected(self, feats, tmp_path):
        with pytest.raises(DatasetError):
            load_rfs(tmp_path / "nope.npz", feats)


class TestHKMeansHierarchy:
    def test_partition_invariants(self, feats):
        registry = {}
        root = build_hkmeans_hierarchy(
            feats, RFSConfig(node_max_entries=50, node_min_entries=25),
            registry, seed=0,
        )
        assert root.size == feats.shape[0]
        stack = [root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                assert node.size <= 50
            else:
                child_ids = np.sort(
                    np.concatenate([c.item_ids for c in node.children])
                )
                assert np.array_equal(child_ids, node.item_ids)
                stack.extend(node.children)

    def test_full_rfs_build_with_hkmeans(self, feats):
        rfs = RFSStructure.build(
            feats,
            RFSConfig(node_max_entries=50, node_min_entries=25),
            seed=1,
            method="hkmeans",
        )
        assert rfs.root.size == feats.shape[0]
        assert rfs.root.representatives
        leaf = rfs.leaf_of_item(10)
        assert rfs.localized_knn(leaf, feats[10], 1)[0][1] == 10

    def test_unknown_method_rejected(self, feats):
        with pytest.raises(ConfigurationError):
            RFSStructure.build(feats, method="agglomerative")

    def test_invalid_branching_rejected(self, feats):
        with pytest.raises(ClusteringError):
            build_hkmeans_hierarchy(
                feats, RFSConfig(), {}, seed=0, branching=1
            )

    def test_duplicate_points_terminate(self):
        dup = np.ones((200, 4))
        registry = {}
        root = build_hkmeans_hierarchy(
            dup, RFSConfig(node_max_entries=30, node_min_entries=15),
            registry, seed=0,
        )
        assert root.size == 200


class TestClientServer:
    def test_payload_counts(self, built_rfs):
        payload = client_payload(built_rfs)
        assert payload.n_nodes == len(built_rfs.nodes)
        assert payload.n_representatives == len(
            built_rfs.all_representatives()
        )
        assert payload.total_bytes > 0

    def test_payload_total_is_sum(self):
        payload = ClientPayload(
            n_nodes=1, n_representatives=1,
            structure_bytes=10, representative_feature_bytes=20,
            thumbnail_bytes=30,
        )
        assert payload.total_bytes == 60

    def test_qd_server_work_much_smaller(self, built_rfs):
        comparison = compare_deployments(built_rfs)
        assert (
            comparison.qd_session.distance_evaluations
            < comparison.traditional_session.distance_evaluations
        )
        assert comparison.server_capacity_multiplier > 2

    def test_qd_contacts_server_once(self, built_rfs):
        comparison = compare_deployments(built_rfs, rounds=5)
        assert comparison.qd_session.rounds_on_server == 1
        assert comparison.traditional_session.rounds_on_server == 5

    def test_format_contains_multiplier(self, built_rfs):
        text = compare_deployments(built_rfs).format()
        assert "capacity multiplier" in text


class TestFamilyWeights:
    def test_vector_layout(self):
        weights = FamilyWeights(color=2.0, texture=1.0, edges=1.0)
        vec = weights.as_vector(FeatureConfig())
        assert vec.shape == (37,)
        assert np.all(vec[:9] > vec[9])  # colour boosted

    def test_normalised_to_dimensionality(self):
        vec = FamilyWeights(color=5, texture=1, edges=1).as_vector()
        assert vec.sum() == pytest.approx(37.0)

    def test_equal_weights_are_unweighted(self):
        vec = FamilyWeights().as_vector()
        assert np.allclose(vec, 1.0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            FamilyWeights(color=-1.0)

    def test_all_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            FamilyWeights(color=0, texture=0, edges=0)

    def test_zero_family_excluded_from_metric(self, built_rfs, feats):
        # (10-d fixture: build a matching weight vector by hand.)
        weights = np.ones(10)
        weights[:5] = 0.0
        base = feats[0].copy()
        twin = base.copy()
        twin[:5] += 100.0  # differs only on zero-weighted dims
        diff = np.sqrt(np.sum(weights * (twin - base) ** 2))
        assert diff == 0.0

    def test_weighted_final_round(self, engine):
        """dim_weights plumb through session finalize."""
        from repro.datasets.queryset import get_query
        from repro.eval.oracle import SimulatedUser

        db = engine.database
        user = SimulatedUser(db, get_query("rose"), seed=2)
        session = engine.new_session(seed=2)
        for _ in range(3):
            session.submit(user.mark(session.display(screens=6)))
        result = session.finalize(
            20, dim_weights=FamilyWeights(color=3.0).as_vector()
        )
        assert len(result.flatten(20)) == 20


class TestCLI:
    @pytest.fixture(scope="class")
    def db_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "db.npz"
        code = cli_main([
            "build-db", "--images", "400", "--categories", "30",
            "--seed", "5", "--out", str(path),
        ])
        assert code == 0
        return path

    def test_info(self, db_path, capsys):
        assert cli_main(["info", "--db", str(db_path)]) == 0
        out = capsys.readouterr().out
        assert "images:      400" in out

    def test_build_rfs_and_query(self, db_path, tmp_path, capsys):
        rfs_path = tmp_path / "rfs.npz"
        assert cli_main([
            "build-rfs", "--db", str(db_path), "--out", str(rfs_path),
            "--node-max", "40", "--node-min", "20",
        ]) == 0
        assert rfs_path.exists()
        assert cli_main([
            "query", "--db", str(db_path), "--rfs", str(rfs_path),
            "--query", "rose", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "precision" in out

    def test_query_without_prebuilt_rfs(self, db_path, capsys):
        assert cli_main([
            "query", "--db", str(db_path), "--query", "bird",
            "--seed", "2", "--k", "20",
        ]) == 0
        assert "GTIR" in capsys.readouterr().out

    def test_missing_db_is_error(self, capsys):
        assert cli_main(["info", "--db", "/nonexistent/db.npz"]) == 1

    def test_fig1_experiment(self, db_path, capsys):
        assert cli_main([
            "experiment", "fig1", "--db", str(db_path),
        ]) == 0
        assert "sedan" in capsys.readouterr().out

    def test_hkmeans_method(self, db_path, tmp_path, capsys):
        rfs_path = tmp_path / "hk.npz"
        assert cli_main([
            "build-rfs", "--db", str(db_path), "--out", str(rfs_path),
            "--method", "hkmeans",
        ]) == 0
        assert "hkmeans" in capsys.readouterr().out
