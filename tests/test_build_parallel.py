"""Offline build pipeline: executor parity and vectorized-kernel
equivalence.

The build pipeline's contract is stronger than "same quality": the
structure produced by a parallel build must be **bit-identical** to the
serial build — same node ids, same member sets, same bounding boxes,
same representatives — because every downstream result (rankings,
caches, serialized indexes) is keyed off it.  These tests pin that
contract across the thread and process executors, and pin the
vectorized Lloyd's-iteration kernels to their naive reference
implementations sample-for-sample.
"""

import json

import numpy as np
import pytest

from repro.clustering.kmeans import (
    _assign,
    _assign_naive,
    _lloyd_update,
    _lloyd_update_naive,
    kmeans,
)
from repro.config import BuildConfig, RFSConfig
from repro.errors import ClusteringError, ConfigurationError
from repro.exec.build import (
    ProcessBuildExecutor,
    SerialBuildExecutor,
    ThreadedBuildExecutor,
    make_build_executor,
)
from repro.index.rfs import BuildProgress, RFSStructure
from repro.index.rstar import RStarTree
from repro.index.serialize import load_rfs, save_rfs
from repro.retrieval.multipoint import MultipointQuery

N_IMAGES = 600
DIMS = 16

CFG = RFSConfig(
    node_max_entries=40, node_min_entries=20, leaf_subclusters=3
)
# Small threshold so the 600-point bulk load actually exercises the
# parallel bisect frontier, not just the in-line fallback.
PARALLEL = dict(workers=4, parallel_group_threshold=64)


def _features(seed=0, n=N_IMAGES, d=DIMS):
    return np.random.default_rng(seed).normal(size=(n, d))


def _signature(rfs):
    """Everything that defines a built structure, bit-for-bit."""
    out = []
    for node_id in sorted(rfs.nodes):
        node = rfs.nodes[node_id]
        out.append(
            (
                node_id,
                node.level,
                node.parent.node_id if node.parent else -1,
                tuple(sorted(c.node_id for c in node.children)),
                node.item_ids.tobytes(),
                tuple(node.representatives),
                tuple(sorted(node.rep_child_index.items())),
                node.mbr.lo.tobytes(),
                node.mbr.hi.tobytes(),
                node.center.tobytes(),
            )
        )
    return out


# ----------------------------------------------------------------------
# Executor parity (gated no-skip in scripts/check.sh)
# ----------------------------------------------------------------------
class TestBuildParity:
    @pytest.mark.parametrize("seed", [7, 2006])
    def test_thread_build_identical_to_serial(self, seed):
        feats = _features(seed)
        serial = RFSStructure.build(feats, CFG, seed=seed)
        threaded = RFSStructure.build(
            feats,
            CFG,
            seed=seed,
            build=BuildConfig(executor="thread", **PARALLEL),
        )
        assert _signature(serial) == _signature(threaded)

    def test_process_build_identical_to_serial(self):
        feats = _features(7)
        serial = RFSStructure.build(feats, CFG, seed=7)
        forked = RFSStructure.build(
            feats,
            CFG,
            seed=7,
            build=BuildConfig(executor="process", **PARALLEL),
        )
        assert _signature(serial) == _signature(forked)

    def test_worker_count_does_not_change_tree(self):
        feats = _features(3)
        builds = [
            RFSStructure.build(
                feats,
                CFG,
                seed=3,
                build=BuildConfig(
                    executor="thread",
                    workers=w,
                    parallel_group_threshold=64,
                ),
            )
            for w in (1, 2, 4)
        ]
        first = _signature(builds[0])
        assert all(_signature(b) == first for b in builds[1:])

    def test_hkmeans_thread_build_identical_to_serial(self):
        feats = _features(5)
        serial = RFSStructure.build(feats, CFG, seed=5, method="hkmeans")
        threaded = RFSStructure.build(
            feats,
            CFG,
            seed=5,
            method="hkmeans",
            build=BuildConfig(executor="thread", **PARALLEL),
        )
        assert _signature(serial) == _signature(threaded)

    def test_query_results_identical_after_parallel_build(self):
        feats = _features(11)
        serial = RFSStructure.build(feats, CFG, seed=11)
        threaded = RFSStructure.build(
            feats,
            CFG,
            seed=11,
            build=BuildConfig(executor="thread", **PARALLEL),
        )
        centroid = MultipointQuery(feats[:4]).centroid()
        assert serial.localized_knn(
            serial.root, centroid, 25
        ) == threaded.localized_knn(threaded.root, centroid, 25)

    def test_charge_io_counts_reps_reads_without_changing_tree(self):
        feats = _features(13)
        plain = RFSStructure.build(feats, CFG, seed=13)
        charged = RFSStructure.build(
            feats,
            CFG,
            seed=13,
            build=BuildConfig(charge_io=True),
        )
        assert _signature(plain) == _signature(charged)
        assert plain.io.per_category_logical.get("build_reps", 0) == 0
        assert charged.io.per_category_logical["build_reps"] == len(
            charged.nodes
        )


class TestBisectParity:
    def test_parallel_bulk_load_matches_serial(self):
        pts = _features(21, n=900, d=8)
        trees = []
        for executor in (None, ThreadedBuildExecutor(4)):
            tree = RStarTree(dims=8, max_entries=40)
            tree.bulk_load(
                pts, seed=9, executor=executor, inline_threshold=100
            )
            if executor is not None:
                executor.close()
            trees.append(tree)

        def leaf_groups(tree):
            return [
                tuple(sorted(e.item_id for e in leaf.entries))
                for leaf in tree.iter_leaves()
            ]

        assert leaf_groups(trees[0]) == leaf_groups(trees[1])


# ----------------------------------------------------------------------
# Vectorized Lloyd's iteration == naive reference, bit-for-bit
# ----------------------------------------------------------------------
class TestLloydEquivalence:
    @pytest.mark.parametrize("trial", range(5))
    def test_assignment_matches_naive(self, trial):
        rng = np.random.default_rng(trial)
        data = rng.normal(
            scale=float(rng.uniform(0.01, 100.0)), size=(257, 13)
        )
        centroids = data[rng.choice(257, size=9, replace=False)].copy()
        assert np.array_equal(
            _assign(data, centroids), _assign_naive(data, centroids)
        )

    @pytest.mark.parametrize("chunk", [1, 7, 64, 1000])
    def test_chunked_assignment_matches_unchunked(self, chunk):
        rng = np.random.default_rng(42)
        data = rng.normal(size=(200, 11))
        centroids = data[:6].copy()
        assert np.array_equal(
            _assign(data, centroids, chunk_size=chunk),
            _assign(data, centroids),
        )

    @pytest.mark.parametrize("trial", range(5))
    def test_nearest_candidates_matches_naive(self, trial):
        from repro.index.rfs import (
            _nearest_candidates,
            _nearest_candidates_naive,
        )

        rng = np.random.default_rng(300 + trial)
        cand_feats = rng.normal(size=(180, 12))
        centroids = rng.normal(size=(150, 12))
        assert np.array_equal(
            _nearest_candidates(cand_feats, centroids),
            _nearest_candidates_naive(cand_feats, centroids),
        )

    @pytest.mark.parametrize("trial", range(5))
    def test_centroid_update_matches_naive(self, trial):
        rng = np.random.default_rng(100 + trial)
        data = rng.normal(size=(301, 8))
        k = 7
        centroids = data[:k].copy()
        labels = _assign(data, centroids)
        vec = _lloyd_update(data, labels, k, centroids)
        ref = _lloyd_update_naive(data, labels, k, centroids)
        assert vec.tobytes() == ref.tobytes()

    @pytest.mark.parametrize("trial", range(3))
    def test_full_kmeans_matches_chunked_run(self, trial):
        data = np.random.default_rng(trial).normal(size=(240, 10))
        plain = kmeans(data, 6, seed=trial)
        chunked = kmeans(data, 6, seed=trial, chunk_size=37)
        assert plain.centroids.tobytes() == chunked.centroids.tobytes()
        assert np.array_equal(plain.labels, chunked.labels)
        assert plain.inertia == chunked.inertia
        assert plain.n_iter == chunked.n_iter


class TestEmptyClusterRepair:
    def test_multiple_empty_clusters_reseed_distinct_samples(self):
        # Clusters 2 and 3 are empty; both must re-seed, at different
        # samples (historically they collapsed onto the same farthest
        # point).
        data = np.array(
            [[0.0, 0.0], [0.1, 0.0], [10.0, 0.0], [10.1, 0.0],
             [50.0, 0.0], [40.0, 0.0]]
        )
        labels = np.array([0, 0, 1, 1, 0, 1])
        centroids = np.zeros((4, 2))
        centroids[1] = [10.0, 0.0]
        repaired = _lloyd_update(data, labels, 4, centroids)
        # Farthest-first: [50, 0] (dist 50 from centroid 0), then
        # [40, 0] (dist 30 from centroid 1).
        assert repaired[2].tolist() == [50.0, 0.0]
        assert repaired[3].tolist() == [40.0, 0.0]
        assert not np.array_equal(repaired[2], repaired[3])

    def test_single_empty_cluster_takes_farthest_sample(self):
        data = np.array([[0.0], [1.0], [2.0], [9.0]])
        labels = np.array([0, 0, 0, 0])
        centroids = np.array([[0.0], [100.0]])
        repaired = _lloyd_update(data, labels, 2, centroids)
        assert repaired[1].tolist() == [9.0]
        ref = _lloyd_update_naive(data, labels, 2, centroids)
        assert repaired.tobytes() == ref.tobytes()


class TestMinibatch:
    def test_minibatch_deterministic_and_valid(self):
        data = np.random.default_rng(0).normal(size=(400, 6))
        a = kmeans(data, 5, seed=9, minibatch=64)
        b = kmeans(data, 5, seed=9, minibatch=64)
        assert a.centroids.tobytes() == b.centroids.tobytes()
        assert np.array_equal(a.labels, b.labels)
        assert a.labels.shape == (400,)
        assert set(np.unique(a.labels)) <= set(range(5))
        assert a.inertia > 0

    def test_minibatch_larger_than_n_falls_back_to_exact(self):
        data = np.random.default_rng(1).normal(size=(50, 4))
        exact = kmeans(data, 3, seed=2)
        fallback = kmeans(data, 3, seed=2, minibatch=500)
        assert exact.centroids.tobytes() == fallback.centroids.tobytes()

    def test_invalid_knobs_rejected(self):
        data = np.random.default_rng(2).normal(size=(30, 3))
        with pytest.raises(ClusteringError):
            kmeans(data, 3, chunk_size=-1)
        with pytest.raises(ClusteringError):
            kmeans(data, 3, minibatch=-5)


# ----------------------------------------------------------------------
# Build metadata, progress events, config validation
# ----------------------------------------------------------------------
class TestBuildMeta:
    def test_build_meta_json_safe_and_persisted(self, tmp_path):
        feats = _features(17)
        rfs = RFSStructure.build(feats, CFG, seed=17)
        assert rfs.build_meta["method"] == "bisect"
        assert rfs.build_meta["n_points"] == N_IMAGES
        json.dumps(rfs.build_meta)  # plain types only
        path = tmp_path / "rfs.npz"
        save_rfs(rfs, path)
        restored = load_rfs(path, feats)
        assert restored.build_meta == rfs.build_meta

    def test_str_bulk_load_records_plain_int_sort_dims(self):
        pts = _features(19, n=300, d=6)
        tree = RStarTree(dims=6, max_entries=20)
        tree.bulk_load_str(pts)
        dims = tree.build_meta["sort_dims"]
        assert all(type(d) is int for d in dims)
        assert sorted(dims) == list(range(6))
        json.dumps(tree.build_meta)


class TestBuildProgress:
    def test_progress_events_cover_both_phases(self):
        feats = _features(23)
        events = []
        rfs = RFSStructure.build(
            feats, CFG, seed=23, progress=events.append
        )
        assert events[0] == BuildProgress("cluster_tree", 0, 1)
        assert events[1] == BuildProgress("cluster_tree", 1, 1)
        reps = [e for e in events if e.phase == "representatives"]
        assert [e.done for e in reps] == list(range(1, len(rfs.nodes) + 1))
        assert all(e.total == len(rfs.nodes) for e in reps)

    def test_progress_emitted_from_parallel_build_too(self):
        feats = _features(23)
        events = []
        rfs = RFSStructure.build(
            feats,
            CFG,
            seed=23,
            build=BuildConfig(executor="thread", **PARALLEL),
            progress=events.append,
        )
        reps = [e for e in events if e.phase == "representatives"]
        assert [e.done for e in reps] == list(range(1, len(rfs.nodes) + 1))


class TestBuildConfigValidation:
    def test_rejects_unknown_executor(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(executor="gpu")

    def test_rejects_negative_workers(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(workers=-1)

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ConfigurationError):
            BuildConfig(parallel_group_threshold=0)
        with pytest.raises(ConfigurationError):
            BuildConfig(kmeans_chunk=-1)
        with pytest.raises(ConfigurationError):
            BuildConfig(kmeans_minibatch=-1)

    def test_make_build_executor_kinds(self):
        assert isinstance(make_build_executor("serial"), SerialBuildExecutor)
        thread = make_build_executor("thread", 2)
        assert isinstance(thread, ThreadedBuildExecutor)
        thread.close()
        forked = make_build_executor("process", 2)
        assert isinstance(forked, ProcessBuildExecutor)
        forked.close()
        with pytest.raises(ConfigurationError):
            make_build_executor("gpu")
