"""Concurrency-safety stress tests for the shared mutable state.

The thread executor mutates three things from worker threads: the
simulated disk counter (buffer pool + accounting), the metrics registry,
and the tracer.  These tests hammer each one from many threads and
assert exact totals — a lost update anywhere shows up as an off-by-N.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

from repro import obs
from repro.index.diskmodel import DiskAccessCounter

N_THREADS = 8
N_OPS = 1000


def _hammer(fn) -> None:
    """Run ``fn(worker_index)`` from N_THREADS threads simultaneously."""
    start = threading.Barrier(N_THREADS)

    def body(worker: int) -> None:
        start.wait()
        fn(worker)

    with ThreadPoolExecutor(max_workers=N_THREADS) as pool:
        for future in [pool.submit(body, w) for w in range(N_THREADS)]:
            future.result()


class TestDiskCounterUnderContention:
    def test_no_lost_updates_unbuffered(self):
        io = DiskAccessCounter()
        _hammer(lambda w: [io.access(i, "knn") for i in range(N_OPS)])
        total = N_THREADS * N_OPS
        assert io.logical_reads == total
        assert io.physical_reads == total
        assert io.per_category["knn"] == total
        assert io.per_category_logical["knn"] == total

    def test_per_worker_accounting_is_exact(self):
        io = DiskAccessCounter(buffer_pages=8)
        # Cycle through 32 pages so both hits and misses occur.
        _hammer(lambda w: [io.access(i % 32) for i in range(N_OPS)])
        stats = io.worker_stats()
        hits = sum(s["hits"] for s in stats.values())
        misses = sum(s["misses"] for s in stats.values())
        assert hits + misses == io.logical_reads == N_THREADS * N_OPS
        assert misses == io.physical_reads
        assert hits > 0 and misses > 0

    def test_buffer_never_exceeds_capacity(self):
        io = DiskAccessCounter(buffer_pages=8)
        sizes: list[int] = []

        def body(worker: int) -> None:
            for i in range(N_OPS):
                io.access((worker * N_OPS + i) % 64)
                if i % 100 == 0:
                    sizes.append(len(io._buffer))

        _hammer(body)
        assert len(io._buffer) <= 8
        assert max(sizes) <= 8

    def test_lru_eviction_order_single_thread(self):
        io = DiskAccessCounter(buffer_pages=3)
        for page in (1, 2, 3):
            assert io.access(page)  # cold misses
        assert not io.access(1)  # hit refreshes page 1
        assert io.access(4)  # evicts 2 (LRU), not 1
        assert not io.access(1)
        assert not io.access(3)
        assert not io.access(4)
        assert io.access(2)  # 2 was the one evicted

    def test_delta_round_trip_merges_exactly(self):
        io = DiskAccessCounter(buffer_pages=4)
        io.access(1, "feedback")
        marker = io.delta_marker()
        io.access(1, "knn")  # hit
        io.access(2, "knn")  # miss
        delta = io.delta_since(marker)
        assert delta["logical_reads"] == 2
        assert delta["physical_reads"] == 1
        assert delta["per_category"] == {"knn": 1}
        assert delta["per_category_logical"] == {"knn": 2}

        other = DiskAccessCounter(buffer_pages=4)
        other.merge_delta(delta)
        assert other.logical_reads == 2
        assert other.physical_reads == 1
        assert other.per_category == {"knn": 1}
        worker_totals = other.worker_stats()
        assert sum(
            s.get("hits", 0) + s.get("misses", 0)
            for s in worker_totals.values()
        ) == 2

    def test_pickling_drops_and_restores_lock(self):
        import pickle

        io = DiskAccessCounter(buffer_pages=2)
        io.access(1)
        clone = pickle.loads(pickle.dumps(io))
        assert clone.physical_reads == 1
        clone.access(2)  # usable lock after unpickling
        assert clone.logical_reads == 2


class TestMetricsUnderContention:
    def test_counter_exact_under_contention(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("stress_total", "stress test")
        _hammer(lambda w: [counter.inc() for _ in range(N_OPS)])
        assert counter.value == N_THREADS * N_OPS

    def test_histogram_exact_under_contention(self):
        registry = obs.MetricsRegistry()
        histogram = registry.histogram("stress_hist", "stress test")
        _hammer(lambda w: [histogram.observe(1.0) for _ in range(N_OPS)])
        assert histogram.count == N_THREADS * N_OPS

    def test_get_or_create_race_yields_one_instrument(self):
        registry = obs.MetricsRegistry()
        _hammer(
            lambda w: [
                registry.counter("shared_total", "race test").inc()
                for _ in range(N_OPS)
            ]
        )
        assert registry.counter("shared_total", "race test").value == (
            N_THREADS * N_OPS
        )


class TestFeatureStoreStatsUnderContention:
    def test_block_access_counters_exact(self):
        from repro.config import RFSConfig
        from repro.datasets.build import build_synthetic_database
        from repro.index.rfs import RFSStructure
        from repro.store import FeatureStore

        database = build_synthetic_database(300, n_categories=10, seed=3)
        rfs = RFSStructure.build(
            database.features,
            RFSConfig(node_max_entries=60, node_min_entries=30),
            seed=3,
        )
        store = FeatureStore.build(rfs)
        node_ids = sorted(store.spans)

        def body(worker: int) -> None:
            for i in range(N_OPS):
                store.record_block_access(
                    node_ids[i % len(node_ids)], physical=(i % 2 == 0)
                )

        _hammer(body)
        total = N_THREADS * N_OPS
        snap = store.stats_snapshot()
        assert snap["block_reads"] == total
        assert snap["cache_hits"] + snap["cache_misses"] == total
        assert snap["cache_misses"] == N_THREADS * ((N_OPS + 1) // 2)
        # Every worker replays the same access sequence, so the byte
        # tally is exactly N_THREADS times one worker's miss bytes.
        one_worker = sum(
            store.block_nbytes(node_ids[i % len(node_ids)])
            for i in range(0, N_OPS, 2)
        )
        assert snap["bytes_read"] == N_THREADS * one_worker


class TestResultCacheUnderContention:
    def test_hit_miss_accounting_exact(self):
        import numpy as np

        from repro.cache import SubqueryResultCache

        cache = SubqueryResultCache(64 << 20)
        centroid = np.zeros(8)
        ranked = [(1.0, 1)]
        for key in range(32):
            cache.put(str(key), 0, key, centroid, ranked)

        def body(worker: int) -> None:
            for i in range(N_OPS):
                if i % 3 == 0:
                    cache.put(str(i % 32), 0, i, centroid, ranked)
                else:
                    cache.get(str(i % 64), 0)

        _hammer(body)
        snap = cache.snapshot()
        puts_per_worker = (N_OPS + 2) // 3
        gets_per_worker = N_OPS - puts_per_worker
        assert snap["inserts"] == 32 + N_THREADS * puts_per_worker
        assert snap["hits"] + snap["misses"] == (
            N_THREADS * gets_per_worker
        )
        # Byte accounting stayed consistent with the live entries.
        assert snap["entries"] == len(cache) == 32
        assert snap["bytes"] == sum(
            entry.nbytes for entry in cache._entries.values()
        )


class TestTracerAcrossThreads:
    def test_adopt_parents_worker_spans(self):
        tracer = obs.Tracer()
        with tracer.span("dispatch") as parent:

            def worker(index: int) -> None:
                with tracer.adopt(parent):
                    with tracer.span("work", index=index):
                        pass

            _hammer(worker)
        assert len(tracer.spans) == 1
        children = [s for s in parent.children if s.name == "work"]
        assert len(children) == N_THREADS

    def test_unadopted_worker_span_is_a_root(self):
        tracer = obs.Tracer()
        with tracer.span("dispatch"):
            done = threading.Event()

            def worker() -> None:
                with tracer.span("detached"):
                    pass
                done.set()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert done.is_set()
        names = sorted(span.name for span in tracer.spans)
        assert names == ["detached", "dispatch"]
