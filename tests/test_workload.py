"""Tests for workload generation and the concurrency simulation."""

import numpy as np
import pytest

from repro.config import RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import build_synthetic_database
from repro.errors import EvaluationError
from repro.eval.workload import (
    WorkloadSpec,
    generate_workload,
    simulate_concurrent_users,
)


@pytest.fixture(scope="module")
def small_engine():
    db = build_synthetic_database(1200, n_categories=40, seed=8)
    return QueryDecompositionEngine.build(
        db, RFSConfig(node_max_entries=60, node_min_entries=30), seed=8
    )


class TestWorkloadSpec:
    def test_defaults_valid(self):
        WorkloadSpec()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_queries": 0},
            {"max_targets": 0},
            {"zipf_s": -1.0},
            {"rounds": 0},
            {"result_k": 0},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(EvaluationError):
            WorkloadSpec(**kwargs)


class TestGenerateWorkload:
    def test_count_and_target_bounds(self, small_engine):
        spec = WorkloadSpec(n_queries=30, max_targets=3)
        workload = generate_workload(
            small_engine.database, spec, seed=1
        )
        assert len(workload) == 30
        for query in workload:
            assert 1 <= len(query.targets) <= 3
            assert len(set(query.targets)) == len(query.targets)

    def test_targets_are_real_categories(self, small_engine):
        workload = generate_workload(
            small_engine.database, WorkloadSpec(n_queries=10), seed=2
        )
        names = set(small_engine.database.category_names)
        for query in workload:
            assert set(query.targets) <= names

    def test_deterministic(self, small_engine):
        spec = WorkloadSpec(n_queries=15)
        a = generate_workload(small_engine.database, spec, seed=3)
        b = generate_workload(small_engine.database, spec, seed=3)
        assert a == b

    def test_zipf_skews_popularity(self, small_engine):
        workload = generate_workload(
            small_engine.database,
            WorkloadSpec(n_queries=400, max_targets=1, zipf_s=1.5),
            seed=4,
        )
        counts: dict[str, int] = {}
        for query in workload:
            counts[query.targets[0]] = counts.get(query.targets[0], 0) + 1
        frequencies = sorted(counts.values(), reverse=True)
        # The most popular category appears far more than the median one.
        assert frequencies[0] >= 4 * np.median(frequencies)

    def test_uniform_when_zipf_zero(self, small_engine):
        workload = generate_workload(
            small_engine.database,
            WorkloadSpec(n_queries=400, max_targets=1, zipf_s=0.0),
            seed=5,
        )
        counts: dict[str, int] = {}
        for query in workload:
            counts[query.targets[0]] = counts.get(query.targets[0], 0) + 1
        frequencies = sorted(counts.values(), reverse=True)
        assert frequencies[0] <= 4 * np.median(frequencies)


class TestConcurrencySimulation:
    def test_report_shape(self, small_engine):
        workload = generate_workload(
            small_engine.database, WorkloadSpec(n_queries=12), seed=6
        )
        report = simulate_concurrent_users(
            small_engine, workload, seed=6
        )
        assert report.n_sessions + report.skipped_sessions == 12
        assert report.qd_server_seconds >= 0
        assert report.traditional_server_seconds >= 0

    def test_qd_server_cheaper(self, small_engine):
        workload = generate_workload(
            small_engine.database, WorkloadSpec(n_queries=15), seed=7
        )
        report = simulate_concurrent_users(
            small_engine, workload, seed=7
        )
        assert report.n_sessions > 0
        # Page reads are deterministic; wall-clock at this tiny scale is
        # noise-dominated (the paper-scale assertion lives in
        # benchmarks/bench_concurrency.py).
        assert (
            report.qd_server_page_reads
            < report.traditional_server_page_reads / 5
        )
        assert report.throughput_multiplier > 0.3

    def test_format(self, small_engine):
        workload = generate_workload(
            small_engine.database, WorkloadSpec(n_queries=5), seed=8
        )
        report = simulate_concurrent_users(
            small_engine, workload, seed=8
        )
        assert "throughput multiplier" in report.format()
