"""Tests for the baseline retrieval techniques."""

import numpy as np
import pytest

from repro.baselines import (
    ALL_BASELINES,
    GlobalKNN,
    MarsMultipoint,
    MultipleViewpoints,
    QCluster,
    QueryPointMovement,
)
from repro.baselines.mv import Channel, default_channels
from repro.datasets.queryset import get_query
from repro.errors import QueryError, SessionStateError
from repro.eval.oracle import SimulatedUser


@pytest.fixture()
def started(rendered_db):
    def make(cls, **kwargs):
        technique = cls(rendered_db, seed=0, **kwargs)
        technique.begin([0])
        return technique

    return make


class TestLifecycle:
    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_retrieve_before_begin_raises(self, rendered_db, cls):
        with pytest.raises(SessionStateError):
            cls(rendered_db).retrieve(5)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_feedback_before_begin_raises(self, rendered_db, cls):
        with pytest.raises(SessionStateError):
            cls(rendered_db).feedback([1])

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_begin_empty_raises(self, rendered_db, cls):
        with pytest.raises(QueryError):
            cls(rendered_db).begin([])

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_begin_out_of_range_raises(self, rendered_db, cls):
        with pytest.raises(QueryError):
            cls(rendered_db).begin([10**9])

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_retrieve_returns_k_unique(self, started, cls):
        technique = started(cls)
        ranked = technique.retrieve(25)
        ids = ranked.ids()
        assert len(ids) == 25
        assert len(set(ids)) == 25

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_invalid_k_raises(self, started, cls):
        with pytest.raises(QueryError):
            started(cls).retrieve(0)

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_feedback_accumulates_relevant(self, started, cls):
        technique = started(cls)
        technique.feedback([5, 6])
        technique.feedback([6, 7])
        assert set(technique.relevant_ids) == {0, 5, 6, 7}

    @pytest.mark.parametrize("cls", ALL_BASELINES)
    def test_example_among_top_results(self, started, cls):
        """The example image itself should rank at/near the top."""
        technique = started(cls)
        assert 0 in technique.retrieve(10).ids()


class TestGlobalKNN:
    def test_retrieves_own_cluster_first(self, rendered_db):
        owl_ids = rendered_db.ids_of_category("bird_owl")
        technique = GlobalKNN(rendered_db, seed=0)
        technique.begin([int(owl_ids[0])])
        got = technique.retrieve(5).ids()
        cats = {rendered_db.category_of(i) for i in got}
        assert "bird_owl" in cats

    def test_centroid_update_moves_query(self, rendered_db):
        owl = int(rendered_db.ids_of_category("bird_owl")[0])
        eagle = int(rendered_db.ids_of_category("bird_eagle")[0])
        technique = GlobalKNN(rendered_db, seed=0)
        technique.begin([owl])
        before = technique._query_point.copy()
        technique.feedback([eagle])
        assert not np.allclose(before, technique._query_point)


class TestQPM:
    def test_weights_uniform_with_single_example(self, rendered_db):
        technique = QueryPointMovement(rendered_db, seed=0)
        technique.begin([0])
        assert np.allclose(technique._weights, 1.0)

    def test_weights_sharpen_with_feedback(self, rendered_db):
        owl_ids = rendered_db.ids_of_category("bird_owl")[:6]
        technique = QueryPointMovement(rendered_db, seed=0)
        technique.begin([int(owl_ids[0])])
        technique.feedback([int(i) for i in owl_ids[1:]])
        assert technique._weights.std() > 0

    def test_improves_precision_over_knn_single_round(self, rendered_db):
        """Weighted metric should not hurt on a clean cluster."""
        owl_ids = rendered_db.ids_of_category("bird_owl")
        relevant = set(int(i) for i in owl_ids)
        qpm = QueryPointMovement(rendered_db, seed=0)
        qpm.begin([int(owl_ids[0])])
        qpm.feedback([int(i) for i in owl_ids[1:8]])
        got = qpm.retrieve(20).ids()
        hits = sum(1 for i in got if i in relevant)
        assert hits >= 12


class TestMars:
    def test_multipoint_has_clusters_after_feedback(self, rendered_db):
        owl = rendered_db.ids_of_category("bird_owl")[:4]
        eagle = rendered_db.ids_of_category("bird_eagle")[:4]
        technique = MarsMultipoint(rendered_db, seed=0)
        technique.begin([int(owl[0])])
        technique.feedback(
            [int(i) for i in owl[1:]] + [int(i) for i in eagle]
        )
        assert technique._query.size >= 2

    def test_invalid_max_clusters(self, rendered_db):
        with pytest.raises(ValueError):
            MarsMultipoint(rendered_db, max_clusters=0)


class TestQCluster:
    def test_contours_formed(self, rendered_db):
        owl = rendered_db.ids_of_category("bird_owl")[:5]
        technique = QCluster(rendered_db, seed=0)
        technique.begin([int(owl[0])])
        technique.feedback([int(i) for i in owl[1:]])
        assert len(technique._contours) >= 1

    def test_disjunctive_scoring_covers_two_far_clusters(self, rendered_db):
        owl = rendered_db.ids_of_category("bird_owl")[:5]
        rose = rendered_db.ids_of_category("rose_red")[:5]
        technique = QCluster(rendered_db, seed=0, max_clusters=3)
        technique.begin([int(owl[0])])
        technique.feedback(
            [int(i) for i in owl[1:]] + [int(i) for i in rose]
        )
        assert len(technique._contours) >= 2
        got = technique.retrieve(40).ids()
        cats = {rendered_db.category_of(i) for i in got}
        assert "bird_owl" in cats and "rose_red" in cats

    def test_invalid_max_clusters(self, rendered_db):
        with pytest.raises(ValueError):
            QCluster(rendered_db, max_clusters=0)


class TestMV:
    def test_four_default_channels(self):
        channels = default_channels()
        assert [c.name for c in channels] == [
            "color", "color-negative", "bw", "bw-negative",
        ]

    def test_bw_channels_ignore_color(self):
        for channel in default_channels():
            if channel.name.startswith("bw"):
                assert np.all(channel.weights[:9] == 0.0)
            else:
                assert np.all(channel.weights == 1.0)

    def test_negative_channel_flips_color_block(self):
        channels = {c.name: c for c in default_channels()}
        q = np.ones(37)
        transformed = channels["color-negative"].transform(q)
        assert np.all(transformed[:9] == -1.0)
        assert np.all(transformed[9:] == 1.0)

    def test_channel_results_keys(self, rendered_db):
        technique = MultipleViewpoints(rendered_db, seed=0)
        technique.begin([0])
        results = technique.channel_results(5)
        assert set(results) == {
            "color", "color-negative", "bw", "bw-negative",
        }
        for ranked in results.values():
            assert len(ranked) == 5

    def test_retrieve_combines_channels(self, rendered_db):
        technique = MultipleViewpoints(rendered_db, seed=0)
        technique.begin([0])
        combined = set(technique.retrieve(40).ids())
        per_channel = technique.channel_results(40)
        union = set()
        for ranked in per_channel.values():
            union.update(ranked.ids())
        assert combined <= union

    def test_dimension_mismatch_rejected(self, rendered_db):
        bad = [Channel("x", np.ones(5), np.ones(5))]
        with pytest.raises(QueryError):
            MultipleViewpoints(rendered_db, channels=bad)

    def test_no_channels_rejected(self, rendered_db):
        with pytest.raises(QueryError):
            MultipleViewpoints(rendered_db, channels=[])

    def test_bw_channel_finds_color_variant(self, rendered_db):
        """MV's selling point: a colour-blind channel recovers images
        that differ only in colour (the blue bus / green bus example)."""
        yellow = rendered_db.ids_of_category("rose_yellow")
        technique = MultipleViewpoints(rendered_db, seed=0)
        technique.begin([int(yellow[0])])
        bw = technique.channel_results(60)["bw"].ids()
        cats = {rendered_db.category_of(i) for i in bw}
        assert "rose_red" in cats or "rose_yellow" in cats

    def test_single_neighbourhood_confinement(self, rendered_db):
        """MV from an owl example misses at least one far bird cluster —
        the confinement the paper's §5.2.1 attributes to the k-NN model."""
        query = get_query("bird")
        user = SimulatedUser(rendered_db, query, seed=0)
        owl = rendered_db.ids_of_category("bird_owl")
        technique = MultipleViewpoints(rendered_db, seed=0)
        technique.begin([int(owl[0])])
        for _ in range(3):
            got = technique.retrieve(60).ids()
            technique.feedback(user.mark(got))
        cats = {rendered_db.category_of(i) for i in got}
        bird_cats = {"bird_owl", "bird_eagle", "bird_sparrow"}
        assert len(cats & bird_cats) < 3
