"""Tests for repro.utils: rng, validation, timing."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.utils.rng import derive_rng, ensure_rng, spawn_seeds
from repro.utils.timing import Stopwatch, TimingLog
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
    check_vector,
    check_vectors,
)


class TestEnsureRng:
    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_generator_passes_through(self):
        gen = np.random.default_rng(1)
        assert ensure_rng(gen) is gen

    def test_numpy_integer_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("seed")  # type: ignore[arg-type]


class TestDeriveRng:
    def test_same_stream_same_output(self):
        parent = np.random.default_rng(7)
        a = derive_rng(parent, "x").random(4)
        b = derive_rng(parent, "x").random(4)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        parent = np.random.default_rng(7)
        a = derive_rng(parent, "x").random(4)
        b = derive_rng(parent, "y").random(4)
        assert not np.array_equal(a, b)

    def test_parent_state_not_consumed(self):
        parent = np.random.default_rng(7)
        before = parent.bit_generator.state
        derive_rng(parent, "x")
        assert parent.bit_generator.state == before

    def test_order_independent(self):
        p1 = np.random.default_rng(7)
        x_first = derive_rng(p1, "x").random(3)
        p2 = np.random.default_rng(7)
        derive_rng(p2, "y")
        x_second = derive_rng(p2, "x").random(3)
        assert np.array_equal(x_first, x_second)


class TestSpawnSeeds:
    def test_count_and_determinism(self):
        seeds = spawn_seeds(5, 4)
        assert len(seeds) == 4
        assert seeds == spawn_seeds(5, 4)

    def test_distinct(self):
        assert len(set(spawn_seeds(5, 10))) == 10


class TestValidation:
    def test_check_positive_accepts(self):
        assert check_positive("x", 1.5) == 1.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ConfigurationError, match="x"):
            check_positive("x", 0)

    def test_check_positive_nonstrict_accepts_zero(self):
        assert check_positive("x", 0, strict=False) == 0

    def test_check_positive_nonstrict_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            check_positive("x", -1, strict=False)

    def test_check_fraction(self):
        assert check_fraction("f", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_fraction("f", 0.0)
        with pytest.raises(ConfigurationError):
            check_fraction("f", 1.2)

    def test_check_probability(self):
        assert check_probability("p", 0.0) == 0.0
        assert check_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            check_probability("p", -0.01)

    def test_check_vector_shape(self):
        out = check_vector("v", np.array([1.0, 2.0]), dim=2)
        assert out.dtype == np.float64
        with pytest.raises(ConfigurationError):
            check_vector("v", np.array([1.0, 2.0]), dim=3)

    def test_check_vector_rejects_2d(self):
        with pytest.raises(ConfigurationError):
            check_vector("v", np.zeros((2, 2)))

    def test_check_vector_rejects_nan(self):
        with pytest.raises(ConfigurationError):
            check_vector("v", np.array([1.0, np.nan]))

    def test_check_vectors_shape(self):
        out = check_vectors("m", np.zeros((3, 4)), dim=4)
        assert out.shape == (3, 4)
        with pytest.raises(ConfigurationError):
            check_vectors("m", np.zeros((3, 4)), dim=5)

    def test_check_vectors_rejects_1d(self):
        with pytest.raises(ConfigurationError):
            check_vectors("m", np.zeros(4))

    def test_check_vectors_rejects_inf(self):
        bad = np.zeros((2, 2))
        bad[0, 0] = np.inf
        with pytest.raises(ConfigurationError):
            check_vectors("m", bad)


class TestTiming:
    def test_stopwatch_measures(self):
        with Stopwatch() as sw:
            sum(range(100))
        assert sw.elapsed >= 0.0

    def test_timing_log_record_and_mean(self):
        log = TimingLog()
        log.record("phase", 1.0)
        log.record("phase", 3.0)
        assert log.mean("phase") == pytest.approx(2.0)
        assert log.total("phase") == pytest.approx(4.0)
        assert log.count("phase") == 2

    def test_timing_log_unknown_phase_is_zero(self):
        log = TimingLog()
        assert log.mean("nope") == 0.0
        assert log.total("nope") == 0.0
        assert log.count("nope") == 0

    def test_measure_context_manager(self):
        log = TimingLog()
        with log.measure("work"):
            sum(range(100))
        assert log.count("work") == 1
        assert log.total("work") >= 0.0

    def test_phases_iteration(self):
        log = TimingLog()
        log.record("a", 1.0)
        log.record("b", 1.0)
        assert sorted(log.phases()) == ["a", "b"]

    def test_percentile(self):
        log = TimingLog()
        for v in range(1, 101):
            log.record("phase", float(v))
        assert log.percentile("phase", 50) == pytest.approx(50.5)
        assert log.percentile("phase", 95) == pytest.approx(95.05)
        assert log.percentile("phase", 100) == pytest.approx(100.0)

    def test_percentile_unknown_phase_is_zero(self):
        assert TimingLog().percentile("nope", 95) == 0.0

    def test_merge_combines_samples(self):
        a = TimingLog()
        a.record("shared", 1.0)
        a.record("only_a", 2.0)
        b = TimingLog()
        b.record("shared", 3.0)
        b.record("only_b", 4.0)
        merged = a.merge(b)
        assert merged is a  # merges in place, returns self
        assert a.count("shared") == 2
        assert a.total("shared") == pytest.approx(4.0)
        assert a.total("only_a") == pytest.approx(2.0)
        assert a.total("only_b") == pytest.approx(4.0)
        # The donor log is untouched.
        assert b.count("shared") == 1
