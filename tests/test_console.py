"""Tests for the terminal session front end."""

import pytest

from repro.core.console import parse_picks, run_console_session
from repro.errors import QueryError


class TestParsePicks:
    def test_empty_means_none(self):
        assert parse_picks("", [10, 20]) == []
        assert parse_picks("   ", [10, 20]) == []

    def test_positions_map_to_ids(self):
        assert parse_picks("1 3", [10, 20, 30]) == [10, 30]

    def test_commas_accepted(self):
        assert parse_picks("1,2", [10, 20]) == [10, 20]

    def test_all_keyword(self):
        assert parse_picks("ALL", [10, 20]) == [10, 20]

    def test_out_of_range_rejected(self):
        with pytest.raises(QueryError):
            parse_picks("3", [10, 20])
        with pytest.raises(QueryError):
            parse_picks("0", [10, 20])

    def test_non_number_rejected(self):
        with pytest.raises(QueryError):
            parse_picks("first", [10, 20])


class FakeIO:
    """Scripted stdin/stdout pair for console tests."""

    def __init__(self, replies):
        self.replies = list(replies)
        self.lines = []

    def input(self, prompt):
        self.lines.append(prompt)
        return self.replies.pop(0)

    def print(self, text):
        self.lines.append(text)


class TestRunConsoleSession:
    def test_scripted_session_completes(self, engine):
        db = engine.database

        def reply_for(shown):
            # Mark everything that is a rose (like an oracle typing).
            picks = [
                str(pos + 1)
                for pos, image_id in enumerate(shown)
                if db.category_of(image_id).startswith("rose")
            ]
            return " ".join(picks)

        # Intercept displays by wrapping input: the console prints each
        # candidate before prompting, so we rebuild 'shown' from the
        # transcript instead — simpler: mark 'all' every round and
        # verify the session ends with a result.
        io = FakeIO(["all", "all", "all"])
        result = run_console_session(
            engine, k=20, rounds=3, screens=1, seed=5,
            input_fn=io.input, print_fn=io.print,
        )
        assert len(result.flatten(20)) == 20
        transcript = "\n".join(io.lines)
        assert "round 1" in transcript
        assert "final result" in transcript
        del reply_for

    def test_bad_input_reprompts(self, engine):
        io = FakeIO(["banana", "all", "", "all"])
        result = run_console_session(
            engine, k=10, rounds=3, screens=1, seed=6,
            input_fn=io.input, print_fn=io.print,
        )
        assert result is not None
        transcript = "\n".join(io.lines)
        assert "! not a number" in transcript

    def test_preview_hook_called(self, engine):
        calls = []

        def preview(image_id):
            calls.append(image_id)
            return "<thumb>"

        io = FakeIO(["all", "all"])
        run_console_session(
            engine, k=10, rounds=2, screens=1, seed=7,
            input_fn=io.input, print_fn=io.print, preview=preview,
        )
        assert calls
        assert "<thumb>" in io.lines
