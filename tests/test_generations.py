"""Generational delta-segment mutations: parity, compaction, engine.

The load-bearing guarantee under test: an index serving from
``main store + delta segment`` ranks **bit-identically** to a
from-scratch rebuild containing the same live items — across store
tiers, executors, shard counts, and pre/post-compaction cache states.
``scripts/check.sh`` runs the ``Parity`` classes as a no-skip gate.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import MutationConfig, QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import build_synthetic_database
from repro.errors import (
    ConfigurationError,
    NodeNotFoundError,
    StaleSessionError,
)
from repro.index.generations import (
    EpochGuard,
    GenerationController,
    generation_seed,
    route_leaf,
)
from repro.index.incremental import validate_structure
from repro.index.rfs import RFSStructure
from repro.store import FeatureStore

CFG = RFSConfig(
    node_max_entries=40, node_min_entries=20, leaf_subclusters=3
)


def _base(n=220, d=16, seed=5, *, tier=None):
    feats = np.random.default_rng(seed).normal(size=(n, d))
    rfs = RFSStructure.build(feats, CFG, seed=seed)
    if tier is not None:
        rfs.attach_store(
            FeatureStore.build(rfs, tier=tier), validate=False
        )
    return rfs


def _mutate(controller, rng, *, inserts=9, removes=6):
    """A deterministic mixed workload; returns (new_ids, removed_ids)."""
    rfs = controller.current
    new_ids = [
        controller.insert(rng.normal(size=rfs.features.shape[1]))
        for _ in range(inserts)
    ]
    candidates = [int(i) for i in rfs.root.item_ids[:: max(1, removes)]]
    removed = candidates[:removes]
    for item in removed:
        controller.remove(item)
    return new_ids, removed


def _rebuild_of(rfs, *, seed=991, tier=None):
    """From-scratch structure over ``rfs``'s live items.

    Returns ``(built, live)`` where ``live[pos]`` maps the rebuild's
    row positions back to the generational deployment's global ids.
    """
    view = rfs.delta_view()
    if view is None or (view.n_delta == 0 and view.n_dead_main == 0):
        live_main = np.asarray(rfs.root.item_ids, dtype=np.int64)
        live_delta = np.empty(0, dtype=np.int64)
        full = rfs.features
    else:
        live_main = np.setdiff1d(
            rfs.root.item_ids, view.dead_main, assume_unique=True
        )
        live_delta = view.base_rows + view.live_indices
        full = (
            np.vstack([rfs.features, view.rows])
            if view.n_delta
            else rfs.features
        )
    live = np.concatenate([live_main, live_delta]).astype(np.int64)
    built = RFSStructure.build(full[live], CFG, seed=seed)
    if tier is not None:
        built.attach_store(
            FeatureStore.build(built, tier=tier), validate=False
        )
    return built, live


def _scan(rfs, query, k, *, weights=None):
    """Root-subtree scan: every live item competes."""
    return rfs.localized_knn(rfs.root, query, k, weights=weights)


def _assert_scan_parity(gen_rfs, rebuilt, live, queries, k, *,
                        weights=None):
    """Generational scan == rebuilt scan, bit for bit, id for id."""
    for query in queries:
        got = _scan(gen_rfs, query, k, weights=weights)
        want = [
            (dist, int(live[pos]))
            for dist, pos in _scan(rebuilt, query, k, weights=weights)
        ]
        assert got == want


def _queries(rfs, n=6, seed=17):
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, rfs.features.shape[1]))


class TestEpochGuard:
    def test_write_bumps_epoch(self):
        guard = EpochGuard()
        with guard.write():
            assert guard.epoch == 0
        assert guard.epoch == 1

    def test_readers_share_and_block_writers(self):
        guard = EpochGuard()
        order = []
        with guard.read():
            with guard.read():  # shared: no deadlock
                writer = threading.Thread(
                    target=lambda: (guard.write().__enter__(),
                                    order.append("wrote"))
                )
                writer.start()
                writer.join(timeout=0.2)
                assert order == []  # writer waits for the lease
        writer.join(timeout=2.0)
        assert order == ["wrote"]


class TestDeltaMutations:
    def test_insert_gets_stable_id_and_is_findable(self):
        rfs = _base()
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        vec = rfs.features[3] + 1e-4
        new_id = controller.insert(vec)
        assert new_id == rfs.features.shape[0]
        got = _scan(rfs, vec, 1)
        assert got[0][1] == new_id

    def test_removed_id_disappears_from_scans(self):
        rfs = _base()
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        victim = int(rfs.root.item_ids[0])
        controller.remove(victim)
        ids = {item for _, item in _scan(rfs, rfs.features[victim], 50)}
        assert victim not in ids

    def test_remove_unknown_raises(self):
        controller = GenerationController(
            _base(), config=MutationConfig(auto_compact=False)
        )
        with pytest.raises(NodeNotFoundError):
            controller.remove(10_000)

    def test_remove_twice_raises(self):
        controller = GenerationController(
            _base(), config=MutationConfig(auto_compact=False)
        )
        controller.remove(0)
        with pytest.raises(NodeNotFoundError):
            controller.remove(0)

    def test_delta_size_counts_rows_and_tombstones(self):
        controller = GenerationController(
            _base(), config=MutationConfig(auto_compact=False)
        )
        _mutate(controller, np.random.default_rng(0),
                inserts=4, removes=3)
        assert controller.delta_size == 7
        assert controller.n_items == 220 + 4 - 3

    def test_route_leaf_matches_leaf_membership(self):
        rfs = _base()
        for item in (0, 57, 113):
            leaf = route_leaf(rfs, rfs.features[item])
            assert leaf.is_leaf

    def test_validate_structure_clean_under_delta(self):
        rfs = _base(tier="f32")
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        _mutate(controller, np.random.default_rng(1))
        assert validate_structure(rfs) == []


class TestMutationParity:
    """The gate: delta-bearing scans == from-scratch rebuild scans."""

    @pytest.mark.parametrize("tier", [None, "f32", "f16", "int8"])
    def test_scan_parity_across_store_tiers(self, tier):
        rfs = _base(tier=tier)
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        _mutate(controller, np.random.default_rng(2))
        rebuilt, live = _rebuild_of(rfs, tier=tier)
        _assert_scan_parity(rfs, rebuilt, live, _queries(rfs), k=25)

    def test_weighted_scan_parity(self):
        rfs = _base(tier="f32")
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        _mutate(controller, np.random.default_rng(3))
        weights = np.linspace(0.5, 2.0, rfs.features.shape[1])
        rebuilt, live = _rebuild_of(rfs, tier="f32")
        _assert_scan_parity(
            rfs, rebuilt, live, _queries(rfs), k=25, weights=weights
        )

    def test_post_compaction_equals_rebuild_at_generation_seed(self):
        rfs = _base(tier="f32")
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False), seed=41
        )
        _mutate(controller, np.random.default_rng(4))
        live_before = np.sort(
            np.concatenate([
                np.setdiff1d(rfs.root.item_ids,
                             rfs.delta_view().dead_main),
                rfs.delta_view().base_rows
                + rfs.delta_view().live_indices,
            ])
        )
        version = controller.compact()
        current = controller.current
        assert version == current.structure_version
        # Same tree as an independent bulk load at the derived seed.
        rebuilt, live = _rebuild_of(
            current, seed=generation_seed(41, 1), tier="f32"
        )
        assert np.array_equal(np.sort(live), live_before)
        assert np.array_equal(
            np.sort(current.root.item_ids), live_before
        )
        _assert_scan_parity(current, rebuilt, live,
                            _queries(current), k=25)
        assert validate_structure(current) == []

    def test_parity_holds_across_repeated_compactions(self):
        rfs = _base(tier="f32")
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False), seed=8
        )
        rng = np.random.default_rng(5)
        for round_no in range(3):
            _mutate(controller, rng, inserts=5, removes=3)
            controller.compact()
            current = controller.current
            assert current.build_meta["generation"] == round_no + 1
            rebuilt, live = _rebuild_of(
                current,
                seed=generation_seed(8, round_no + 1),
                tier="f32",
            )
            _assert_scan_parity(current, rebuilt, live,
                                _queries(current, n=3), k=20)

    def test_mutated_then_scanned_ids_stay_stable_across_swap(self):
        rfs = _base()
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        vec = rfs.features[11] + 5e-4
        new_id = controller.insert(vec)
        controller.remove(int(rfs.root.item_ids[1]))
        controller.compact()
        got = _scan(controller.current, vec, 1)
        assert got[0][1] == new_id  # same global id, now a main row


class TestExecutorParity:
    """Final rounds over a delta-bearing index across executors."""

    @pytest.fixture(scope="class")
    def mutated_db_engine(self):
        database = build_synthetic_database(600, n_categories=20, seed=6)
        engine = QueryDecompositionEngine.build(
            database, CFG, QDConfig(), seed=31,
            mutations=MutationConfig(auto_compact=False),
        )
        rng = np.random.default_rng(7)
        for _ in range(8):
            engine.insert_image(rng.normal(size=database.dims))
        for item in (3, 77, 200):
            engine.remove_image(item)
        yield database, engine
        engine.close()

    @staticmethod
    def _flat(result):
        return [
            (g.leaf_node_id, g.search_node_id,
             [(it.item_id, it.score) for it in g.items])
            for g in result.groups
        ]

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_final_round_matches_serial(self, mutated_db_engine,
                                        executor):
        database, serial_engine = mutated_db_engine
        other = QueryDecompositionEngine(
            database, serial_engine.rfs,
            QDConfig(executor=executor, workers=2),
        )
        mark = lambda shown: list(shown[:4])  # noqa: E731
        want = serial_engine.run_scripted(mark, k=30, rounds=2, seed=13)
        try:
            got = other.run_scripted(mark, k=30, rounds=2, seed=13)
        finally:
            other.close()
        assert self._flat(got) == self._flat(want)


class TestCacheParity:
    """Cache pre/post-compaction: correct results, surgical evictions.

    Parity here means the cache *hit* path (stored main-only ranking +
    post-consult delta merge) returns exactly what the *miss* path
    (fresh block scans) returns on the same structure — before a
    mutation, after it, and across a generation swap.
    """

    BATCH = [((1, 2, 3), 20), ((40, 41, 90), 20), ((150, 151), 20)]

    def _cached_engine(self):
        from repro.cache import SubqueryResultCache

        database = build_synthetic_database(440, n_categories=16,
                                            seed=19)
        engine = QueryDecompositionEngine.build(
            database, CFG, QDConfig(), seed=21,
            mutations=MutationConfig(auto_compact=False),
        )
        engine.rfs.attach_store(
            FeatureStore.build(engine.rfs), validate=False
        )
        engine.rfs.attach_cache(SubqueryResultCache(4 << 20))
        return engine

    @staticmethod
    def _flat(results):
        return [
            [(it.item_id, it.score) for g in r.groups for it in g.items]
            for r in results
        ]

    def _hit_vs_miss(self, engine):
        """Cached answers == answers with the cache detached."""
        rfs = engine.rfs
        hit = self._flat(engine.run_batch(self.BATCH))
        cache = rfs.result_cache
        rfs.detach_cache()
        try:
            miss = self._flat(engine.run_batch(self.BATCH))
        finally:
            rfs.attach_cache(cache)
        assert hit == miss

    def test_insert_invalidates_nothing_and_hits_stay_exact(self):
        with self._cached_engine() as engine:
            engine.run_batch(self.BATCH)  # warm
            cache = engine.rfs.result_cache
            before = cache.snapshot()
            assert before["entries"] > 0
            engine.insert_image(
                np.random.default_rng(8).normal(
                    size=engine.database.dims
                )
            )
            after = cache.snapshot()
            assert after["mutation_evictions"] == (
                before["mutation_evictions"]
            )
            assert after["entries"] == before["entries"]
            self._hit_vs_miss(engine)

    def test_remove_evicts_per_node_not_globally(self):
        with self._cached_engine() as engine:
            engine.run_batch(self.BATCH)
            cache = engine.rfs.result_cache
            entries_before = cache.snapshot()["entries"]
            assert entries_before > 0
            engine.remove_image(300)
            snap = cache.snapshot()
            assert snap["mutation_evictions"] >= 0
            assert snap["entries"] <= entries_before
            self._hit_vs_miss(engine)

    def test_cache_survives_compaction_and_stays_correct(self):
        with self._cached_engine() as engine:
            engine.run_batch(self.BATCH)
            cache = engine.rfs.result_cache
            rng = np.random.default_rng(9)
            for _ in range(5):
                engine.insert_image(rng.normal(
                    size=engine.database.dims))
            engine.remove_image(10)
            engine.compact_index()
            assert engine.rfs.result_cache is cache  # carried over
            engine.run_batch(self.BATCH)  # stale entries die lazily
            assert cache.snapshot()["stale_evictions"] >= 0
            self._hit_vs_miss(engine)


class TestShardedParity:
    """Router scans with delta == single-node rebuild, pre/post swap."""

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_scan_parity(self, shards):
        from repro.shard import ShardedEngine

        database = build_synthetic_database(500, n_categories=20,
                                            seed=10)
        engine = ShardedEngine.build(
            database, qd_config=QDConfig(), shards=shards,
            seed=23, store="inmem",
            mutations=MutationConfig(auto_compact=False),
        )
        try:
            rng = np.random.default_rng(11)
            for _ in range(7):
                engine.insert_image(rng.normal(size=database.dims))
            for item in (2, 150, 333):
                engine.remove_image(item)
            router = engine.rfs
            rebuilt, live = _rebuild_of(router, tier="f32")
            _assert_scan_parity(router, rebuilt, live,
                                _queries(router), k=25)
            assert engine.compact_index() is not None
            router = engine.rfs
            assert len(router.shards) >= 1
            rebuilt, live = _rebuild_of(router, tier="f32")
            _assert_scan_parity(router, rebuilt, live,
                                _queries(router), k=25)
        finally:
            engine.close()


class TestCompaction:
    def test_threshold_triggers_auto_compaction(self):
        rfs = _base()
        controller = GenerationController(
            rfs, config=MutationConfig(compact_threshold=5)
        )
        rng = np.random.default_rng(12)
        for _ in range(5):
            controller.insert(rng.normal(size=16))
        assert controller.generation == 1
        assert controller.delta_size == 0

    def test_background_compaction_completes(self):
        rfs = _base()
        controller = GenerationController(
            rfs,
            config=MutationConfig(compact_threshold=4,
                                  background=True),
        )
        rng = np.random.default_rng(13)
        for _ in range(4):
            controller.insert(rng.normal(size=16))
        controller.close()  # joins the compactor
        assert controller.generation >= 1

    def test_empty_delta_compaction_is_a_noop(self):
        controller = GenerationController(
            _base(), config=MutationConfig(auto_compact=False)
        )
        assert controller.compact() is None
        assert controller.generation == 0

    def test_retired_map_serves_old_versions_and_is_bounded(self):
        rfs = _base()
        v0 = rfs.structure_version
        controller = GenerationController(
            rfs,
            config=MutationConfig(auto_compact=False, max_retired=2),
        )
        rng = np.random.default_rng(14)
        versions = [v0]
        for _ in range(3):
            controller.insert(rng.normal(size=16))
            versions.append(controller.compact())
        assert len(controller.retired) == 2
        assert controller.structure_for_version(versions[-1]) is (
            controller.current
        )
        assert controller.structure_for_version(versions[0]) is None
        assert (
            controller.structure_for_version(versions[-2]) is not None
        )

    def test_compacting_everything_away_raises(self):
        rfs = _base(n=60)
        controller = GenerationController(
            rfs, config=MutationConfig(auto_compact=False)
        )
        for item in list(rfs.root.item_ids):
            controller.remove(int(item))
        with pytest.raises(ConfigurationError):
            controller.compact()

    def test_generation_seed_is_pure_and_distinct(self):
        assert generation_seed(7, 1) == generation_seed(7, 1)
        assert generation_seed(7, 1) != generation_seed(7, 2)
        assert generation_seed(8, 1) != generation_seed(7, 1)


class TestEngineMutations:
    def test_requires_enable(self):
        database = build_synthetic_database(400, n_categories=16,
                                            seed=15)
        engine = QueryDecompositionEngine.build(database, CFG, seed=1)
        with pytest.raises(ConfigurationError):
            engine.insert_image(np.zeros(database.dims))

    def test_enable_idempotent_but_not_reconfigurable(self):
        database = build_synthetic_database(400, n_categories=16,
                                            seed=15)
        engine = QueryDecompositionEngine.build(database, CFG, seed=1)
        controller = engine.enable_mutations(
            MutationConfig(auto_compact=False)
        )
        assert engine.enable_mutations() is controller
        with pytest.raises(ConfigurationError):
            engine.enable_mutations(MutationConfig())

    def test_swap_repoints_engine_and_sessions_resume_pinned(self):
        from repro.sessionstore import make_session_store

        database = build_synthetic_database(500, n_categories=20,
                                            seed=16)
        engine = QueryDecompositionEngine.build(
            database, CFG, QDConfig(), seed=3,
            mutations=MutationConfig(auto_compact=False, max_retired=2),
        )
        engine.attach_session_store(make_session_store("memory"))
        with engine:
            session = engine.open_session(seed=5)
            shown = session.display()
            session.submit(shown[:3])
            old_rfs = engine.rfs
            engine.insert_image(np.zeros(database.dims))
            engine.compact_index()
            assert engine.rfs is not old_rfs
            resumed = engine.resume_session(session.session_id)
            assert resumed.rfs is old_rfs  # pinned generation
            result = resumed.finalize(k=20)
            assert result.groups

    def test_resume_beyond_retired_window_is_fenced(self):
        from repro.sessionstore import make_session_store

        database = build_synthetic_database(500, n_categories=20,
                                            seed=16)
        engine = QueryDecompositionEngine.build(
            database, CFG, QDConfig(), seed=3,
            mutations=MutationConfig(auto_compact=False, max_retired=1),
        )
        engine.attach_session_store(make_session_store("memory"))
        with engine:
            session = engine.open_session(seed=5)
            shown = session.display()
            session.submit(shown[:3])
            for _ in range(2):  # two swaps push v0 out of the window
                engine.insert_image(np.zeros(database.dims))
                engine.compact_index()
            with pytest.raises(StaleSessionError):
                engine.resume_session(session.session_id)


class TestServeMutations:
    def test_insert_and_remove_flow_through_front_end(self):
        from repro.core.clientserver import SessionFrontEnd
        from repro.sessionstore import make_session_store

        database = build_synthetic_database(400, n_categories=16,
                                            seed=18)
        engine = QueryDecompositionEngine.build(
            database, CFG, QDConfig(), seed=9,
            mutations=MutationConfig(auto_compact=False),
        )
        engine.attach_session_store(make_session_store("memory"))
        with engine:
            front = SessionFrontEnd(engine)
            new_id = front.handle(
                "insert", vector=[0.0] * database.dims
            )
            assert new_id.ok
            assert new_id.value == database.size
            removed = front.handle("remove", image_id=new_id.value)
            assert removed.ok and removed.value is True
            missing = front.handle("remove", image_id=new_id.value)
            assert not missing.ok
            assert missing.error_kind == "not_found"
            bad = front.handle("insert", vector=[0.0, 1.0])
            assert not bad.ok
            assert bad.error_kind == "invalid_request"
