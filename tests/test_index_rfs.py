"""Tests for the RFS structure: hierarchy, representatives, localized k-NN."""

import numpy as np
import pytest

from repro.config import RFSConfig
from repro.errors import NodeNotFoundError
from repro.index.rfs import RFSStructure


@pytest.fixture(scope="module")
def small_rfs():
    feats = np.random.default_rng(3).normal(size=(400, 8))
    cfg = RFSConfig(
        node_max_entries=40, node_min_entries=20, leaf_subclusters=3
    )
    return RFSStructure.build(feats, cfg, seed=5), feats


class TestHierarchy:
    def test_root_covers_everything(self, small_rfs):
        rfs, feats = small_rfs
        assert rfs.root.size == feats.shape[0]
        assert np.array_equal(rfs.root.item_ids, np.arange(400))

    def test_children_partition_parent(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            if node.is_leaf:
                continue
            child_ids = np.sort(
                np.concatenate([c.item_ids for c in node.children])
            )
            assert np.array_equal(child_ids, node.item_ids)

    def test_parent_links(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            for child in node.children:
                assert child.parent is node

    def test_levels_decrease_downwards(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            for child in node.children:
                assert child.level == node.level - 1

    def test_height_consistent(self, small_rfs):
        rfs, _ = small_rfs
        assert rfs.height == rfs.root.level + 1
        assert rfs.height >= 2

    def test_get_node_roundtrip(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            assert rfs.get_node(node.node_id) is node

    def test_get_node_unknown_raises(self, small_rfs):
        rfs, _ = small_rfs
        with pytest.raises(NodeNotFoundError):
            rfs.get_node(10**9)

    def test_leaf_of_item(self, small_rfs):
        rfs, _ = small_rfs
        for item in (0, 100, 399):
            leaf = rfs.leaf_of_item(item)
            assert leaf.is_leaf
            assert item in leaf.item_ids

    def test_leaf_of_unknown_item_raises(self, small_rfs):
        rfs, _ = small_rfs
        with pytest.raises(NodeNotFoundError):
            rfs.leaf_of_item(10**9)

    def test_centres_are_member_means(self, small_rfs):
        rfs, feats = small_rfs
        for node in rfs.iter_nodes():
            assert np.allclose(
                node.center, feats[node.item_ids].mean(axis=0)
            )


class TestRepresentatives:
    def test_every_node_has_representatives(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            assert node.representatives

    def test_representatives_belong_to_subtree(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            members = set(node.item_ids.tolist())
            assert set(node.representatives) <= members

    def test_inner_reps_drawn_from_child_reps(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            if node.is_leaf:
                continue
            child_reps = set()
            for child in node.children:
                child_reps.update(child.representatives)
            assert set(node.representatives) <= child_reps

    def test_rep_routing_covers_all_inner_reps(self, small_rfs):
        rfs, _ = small_rfs
        for node in rfs.iter_nodes():
            if node.is_leaf:
                continue
            for rep in node.representatives:
                child = node.child_of_representative(rep)
                assert rep in child.item_ids

    def test_routing_unknown_rep_raises(self, small_rfs):
        rfs, _ = small_rfs
        root = rfs.root
        non_rep = next(
            int(i) for i in root.item_ids
            if int(i) not in root.rep_child_index
        )
        with pytest.raises(NodeNotFoundError):
            root.child_of_representative(non_rep)

    def test_upper_levels_have_more_reps(self, small_rfs):
        """Paper §3.1: upper clusters carry more representatives."""
        rfs, _ = small_rfs
        leaf_counts = [
            len(n.representatives) for n in rfs.iter_nodes() if n.is_leaf
        ]
        assert len(rfs.root.representatives) > max(leaf_counts)

    def test_overall_fraction_close_to_target(self):
        feats = np.random.default_rng(0).normal(size=(2000, 10))
        cfg = RFSConfig(
            node_max_entries=100, node_min_entries=70,
            representative_fraction=0.05,
        )
        rfs = RFSStructure.build(feats, cfg, seed=1)
        assert 0.03 <= rfs.representative_fraction() <= 0.12

    def test_all_representatives_sorted_unique(self, small_rfs):
        rfs, _ = small_rfs
        reps = rfs.all_representatives()
        assert reps == sorted(set(reps))


class TestBoundaryExpansion:
    def test_central_query_stays_at_leaf(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(0)
        centre = leaf.center[None, :]
        node = rfs.expand_search_node(leaf, centre, threshold=0.4)
        assert node is leaf

    def test_far_query_expands(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(0)
        far = leaf.center + 100.0
        node = rfs.expand_search_node(leaf, far[None, :], threshold=0.4)
        assert node is rfs.root

    def test_threshold_zero_always_expands(self, small_rfs):
        rfs, _ = small_rfs
        leaf = rfs.leaf_of_item(0)
        probe = feats_probe = rfs.features[leaf.item_ids[:1]]
        node = rfs.expand_search_node(leaf, probe, threshold=0.0)
        # Off-centre by any amount triggers expansion to the root.
        if not np.allclose(feats_probe[0], leaf.center):
            assert node is rfs.root

    def test_threshold_one_rarely_expands(self, small_rfs):
        rfs, _ = small_rfs
        leaf = rfs.leaf_of_item(5)
        member = rfs.features[leaf.item_ids[:3]]
        node = rfs.expand_search_node(leaf, member, threshold=1.0)
        assert node is leaf


class TestLocalizedKnn:
    def test_results_come_from_subtree(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(10)
        got = rfs.localized_knn(leaf, feats[10], 5)
        members = set(leaf.item_ids.tolist())
        assert all(i in members for _, i in got)

    def test_self_is_nearest(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(10)
        got = rfs.localized_knn(leaf, feats[10], 1)
        assert got[0][1] == 10
        assert got[0][0] == pytest.approx(0.0)

    def test_k_capped_at_subtree_size(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(10)
        got = rfs.localized_knn(leaf, feats[10], 10_000)
        assert len(got) == leaf.size

    def test_sorted_by_distance(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(20)
        got = rfs.localized_knn(leaf, feats[20], 10)
        dists = [d for d, _ in got]
        assert dists == sorted(dists)

    def test_charges_one_page_per_leaf(self, small_rfs):
        rfs, feats = small_rfs
        leaf = rfs.leaf_of_item(0)
        rfs.io.reset()
        rfs.localized_knn(leaf, feats[0], 3)
        assert rfs.io.per_category["localized_knn"] == 1

    def test_root_search_prunes_leaves(self, small_rfs):
        """Best-first leaf ordering reads only the pages that can hold
        results, never the whole tree."""
        rfs, feats = small_rfs
        n_leaves = sum(1 for n in rfs.iter_nodes() if n.is_leaf)
        rfs.io.reset()
        rfs.localized_knn(rfs.root, feats[0], 3)
        reads = rfs.io.per_category["localized_knn"]
        assert 1 <= reads <= n_leaves

    def test_root_search_matches_brute_force(self, small_rfs):
        """Pruning never changes the result set."""
        rfs, feats = small_rfs
        got = rfs.localized_knn(rfs.root, feats[7], 9)
        dists = np.linalg.norm(feats - feats[7], axis=1)
        order = np.argsort(dists, kind="stable")[:9]
        expected = sorted(
            (float(dists[i]), int(i)) for i in order
        )
        assert sorted(got) == expected


class TestBuildScales:
    def test_three_level_tree_at_paper_density(self):
        """15k images at 100/node give the paper's 3-level RFS tree —
        checked here at proportional scale."""
        feats = np.random.default_rng(1).normal(size=(1500, 12))
        cfg = RFSConfig(node_max_entries=10, node_min_entries=5)
        rfs = RFSStructure.build(feats, cfg, seed=2)
        assert rfs.height >= 3
