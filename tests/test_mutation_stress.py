"""Stress: final rounds racing inserts/removes across generation swaps.

Readers hammer final-round scans from threads while a writer applies a
mixed insert/remove workload that trips background compactions.  Every
scan result is checked for *tearing* — duplicate ids, unsorted scores,
ids that were never allocated, or rows tombstoned before the stress
began — and once the dust settles the surviving index must rank
bit-identically to a from-scratch rebuild of the same live items.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.config import MutationConfig, QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import build_synthetic_database
from repro.index.incremental import validate_structure
from repro.index.rfs import RFSStructure
from repro.store import FeatureStore

CFG = RFSConfig(
    node_max_entries=40, node_min_entries=20, leaf_subclusters=3
)

N_READERS = 3
READS_PER_THREAD = 25
N_WRITES = 60


def _build_engine(*, background):
    database = build_synthetic_database(500, n_categories=20, seed=42)
    engine = QueryDecompositionEngine.build(
        database, CFG, QDConfig(), seed=11,
        mutations=MutationConfig(
            compact_threshold=16, background=background
        ),
    )
    engine.rfs.attach_store(
        FeatureStore.build(engine.rfs), validate=False
    )
    return database, engine


def _check_scan(ranked, *, k, pre_removed, max_id_box):
    """One scan's internal consistency (a torn scan violates these)."""
    assert len(ranked) <= k
    ids = [item for _, item in ranked]
    assert len(ids) == len(set(ids)), "duplicate id in one scan"
    dists = [dist for dist, _ in ranked]
    assert dists == sorted(dists), "unsorted ranking"
    for dist in dists:
        assert np.isfinite(dist)
    for item in ids:
        assert 0 <= item < max_id_box[0], "id never allocated"
        assert item not in pre_removed, "tombstoned row resurfaced"


class TestMutationStress:
    @pytest.mark.parametrize("background", [False, True])
    def test_threaded_scans_race_mutations_without_tearing(
        self, background
    ):
        database, engine = _build_engine(background=background)
        controller = engine.mutations
        rng = np.random.default_rng(77)

        # Rows tombstoned *before* readers start must never resurface.
        pre_removed = {5, 120, 333}
        for item in pre_removed:
            engine.remove_image(item)

        max_id_box = [database.size + N_WRITES]  # ids are allocated < this
        errors: list[BaseException] = []
        start = threading.Barrier(N_READERS + 1)
        queries = rng.normal(size=(8, database.dims))

        def reader(worker: int) -> None:
            try:
                start.wait()
                local = np.random.default_rng(worker)
                for i in range(READS_PER_THREAD):
                    rfs = engine.rfs  # one generation per scan
                    query = queries[
                        int(local.integers(0, len(queries)))
                    ]
                    ranked = rfs.localized_knn(rfs.root, query, 25)
                    _check_scan(
                        ranked, k=25, pre_removed=pre_removed,
                        max_id_box=max_id_box,
                    )
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        def writer() -> None:
            try:
                start.wait()
                inserted: list[int] = []
                for i in range(N_WRITES):
                    if i % 4 == 3 and inserted:
                        engine.remove_image(inserted.pop())
                    else:
                        inserted.append(
                            engine.insert_image(
                                rng.normal(size=database.dims)
                            )
                        )
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=reader, args=(w,))
            for w in range(N_READERS)
        ] + [threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

        # Quiesce: join any in-flight compactor, then force a final
        # compaction so the whole delta is folded in.
        controller.close()
        engine.compact_index()
        current = engine.rfs
        assert validate_structure(current) == []
        if background:
            assert controller.generation >= 1  # swaps actually happened

        # Exact post-swap parity: the survivors rank bit-identically to
        # a from-scratch rebuild over the same live items.
        view = current.delta_view()
        assert view is None or (
            view.n_delta == 0 and view.n_dead_main == 0
        )
        live = np.asarray(current.root.item_ids, dtype=np.int64)
        rebuilt = RFSStructure.build(
            current.features[live], CFG, seed=1234
        )
        rebuilt.attach_store(
            FeatureStore.build(rebuilt), validate=False
        )
        for query in queries:
            got = current.localized_knn(current.root, query, 25)
            want = [
                (dist, int(live[pos]))
                for dist, pos in rebuilt.localized_knn(
                    rebuilt.root, query, 25
                )
            ]
            assert got == want
        for item in pre_removed:
            assert item not in set(live)
        engine.close()

    def test_session_rounds_race_swaps(self):
        """Scripted sessions keep finishing while generations swap."""
        database, engine = _build_engine(background=True)
        rng = np.random.default_rng(3)
        errors: list[BaseException] = []
        done = threading.Event()

        def writer() -> None:
            try:
                while not done.is_set():
                    engine.insert_image(rng.normal(size=database.dims))
            except BaseException as exc:
                errors.append(exc)

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for trial in range(4):
                result = engine.run_scripted(
                    lambda shown: list(shown[:4]),
                    k=25, rounds=2, seed=trial,
                )
                ids = result.flatten(25)
                assert len(ids) == len(set(ids))
        finally:
            done.set()
            thread.join()
        assert errors == []
        engine.mutations.close()
        assert engine.mutations.generation >= 1
        assert validate_structure(engine.rfs) == []
        engine.close()
