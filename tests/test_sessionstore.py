"""Externalized session state: codec, stores, and resume parity.

The load-bearing contract (ROADMAP item 2): a feedback session
checkpointed after any round and resumed — by the same process, another
thread, or a *fresh* process — must continue **bit-identically** to the
never-suspended run, for every store backend and every executor kind.
``scripts/check.sh`` runs the ``Parity`` tests as a no-skip gate.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
import threading

import pytest

from repro.config import QDConfig
from repro.core.clientserver import SessionFrontEnd
from repro.core.session import FeedbackSession
from repro.core.session_state import (
    STATE_FORMAT_VERSION,
    SessionState,
    config_fingerprint,
)
from repro.errors import (
    ConfigurationError,
    SessionCodecError,
    SessionNotFoundError,
    SessionStateError,
    SessionStoreError,
    StaleSessionError,
)
from repro.exec import ProcessSubqueryExecutor
from repro.sessionstore import (
    SESSION_STORE_KINDS,
    InMemorySessionStore,
    JSONDirectorySessionStore,
    SQLiteSessionStore,
    decode_state,
    encode_state,
    make_session_store,
)

SEED = 1234
ROUNDS = 3
K = 60
SCREENS = 2
MARKS_PER_ROUND = 6

EXECUTORS = ["serial", "thread", "process"]

needs_fork = pytest.mark.skipif(
    not ProcessSubqueryExecutor.fork_available(),
    reason="fork start method unavailable on this platform",
)


def _store(kind: str, tmp_path):
    """A fresh backend of the requested kind under ``tmp_path``."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    return make_session_store(kind, path=str(tmp_path / f"store-{kind}"))


def _mark_fn(labels):
    """Deterministic oracle: mark same-category images as the first shown."""

    def mark(shown):
        if not shown:
            return []
        target = labels[shown[0]]
        return [i for i in shown if labels[i] == target][:MARKS_PER_ROUND]

    return mark


def _signature(result):
    """Everything rank-relevant about a final result, exactly."""
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _run_session(
    rfs,
    labels,
    config,
    *,
    store=None,
    suspend_after=None,
    session_id="sess",
):
    """Drive one full dialogue; optionally suspend+resume mid-way.

    With ``suspend_after=r`` the live session object is dropped after
    round ``r``'s submit and a new one is rehydrated from the store —
    the only continuity is the externalized record.  Returns
    (per-round shown tuples, final ranking signature).
    """
    session = FeedbackSession(
        rfs, config, seed=SEED, session_id=session_id, store=store
    )
    mark = _mark_fn(labels)
    shown_log = []
    for rnd in range(1, ROUNDS + 1):
        shown = session.display(screens=SCREENS)
        shown_log.append(tuple(shown))
        session.submit(mark(shown))
        if store is not None and suspend_after == rnd:
            del session  # nothing survives but the store record
            session = FeedbackSession.restore(
                rfs, store.get(session_id), config=config, store=store
            )
    return shown_log, _signature(session.finalize(K))


# ---------------------------------------------------------------------------
# Resume parity — gated no-skip by scripts/check.sh (-k Parity)
# ---------------------------------------------------------------------------
class TestResumeParity:
    """Checkpoint/resume must never change what the user sees or gets."""

    @pytest.mark.parametrize("backend", SESSION_STORE_KINDS)
    @pytest.mark.parametrize(
        "executor",
        [
            "serial",
            "thread",
            pytest.param("process", marks=needs_fork),
        ],
    )
    def test_suspend_at_every_round_parity(
        self, rfs, rendered_db, executor, backend, tmp_path
    ):
        """Suspend after each round in turn; all must match the reference."""
        config = QDConfig(executor=executor, workers=2)
        reference = _run_session(rfs, rendered_db.labels, config)
        for suspend_after in range(1, ROUNDS + 1):
            with _store(backend, tmp_path / str(suspend_after)) as store:
                resumed = _run_session(
                    rfs,
                    rendered_db.labels,
                    config,
                    store=store,
                    suspend_after=suspend_after,
                )
                assert resumed == reference, (
                    f"suspend after round {suspend_after} diverged "
                    f"({executor}/{backend})"
                )
                # finalize() removes the completed dialogue's record.
                assert store.list_ids() == []

    @pytest.mark.parametrize("backend", SESSION_STORE_KINDS)
    def test_mid_round_suspend_parity(self, rfs, rendered_db, backend, tmp_path):
        """Suspending between display() and submit() carries the screen."""
        config = QDConfig()
        reference = _run_session(rfs, rendered_db.labels, config)
        mark = _mark_fn(rendered_db.labels)
        with _store(backend, tmp_path) as store:
            session = FeedbackSession(
                rfs, config, seed=SEED, session_id="mid", store=store
            )
            shown_log = [tuple(session.display(screens=SCREENS))]
            session.checkpoint()  # explicit: mid-round state
            session = FeedbackSession.restore(
                rfs, store.get("mid"), config=config, store=store
            )
            session.submit(mark(list(shown_log[0])))
            for _ in range(ROUNDS - 1):
                shown = session.display(screens=SCREENS)
                shown_log.append(tuple(shown))
                session.submit(mark(shown))
            assert (shown_log, _signature(session.finalize(K))) == reference

    @pytest.mark.parametrize("backend", ["sqlite", "jsondir"])
    def test_fresh_process_resume_parity(self, rfs, rendered_db, backend, tmp_path):
        """A brand-new interpreter resumes to the identical final ranking.

        The child process shares nothing with this one but the store
        directory and the deterministic build seeds.
        """
        config = QDConfig()
        reference = _run_session(rfs, rendered_db.labels, config)
        with _store(backend, tmp_path) as store:
            session = FeedbackSession(
                rfs, config, seed=SEED, session_id="handover", store=store
            )
            mark = _mark_fn(rendered_db.labels)
            shown_log = []
            shown = session.display(screens=SCREENS)
            shown_log.append(tuple(shown))
            session.submit(mark(shown))  # auto-checkpoints round 1
        store_path = str(tmp_path / f"store-{backend}")
        script = (
            "import json, sys\n"
            "from repro.config import DatasetConfig, QDConfig, RFSConfig\n"
            "from repro.core.session import FeedbackSession\n"
            "from repro.datasets.build import build_rendered_database\n"
            "from repro.index.rfs import RFSStructure\n"
            "from repro.sessionstore import make_session_store\n"
            "from tests.test_sessionstore import (\n"
            "    K, ROUNDS, SCREENS, _mark_fn, _signature,\n"
            ")\n"
            "from tests.conftest import (\n"
            "    SMALL_DB_CATEGORIES, SMALL_DB_IMAGES, SMALL_RFS,\n"
            ")\n"
            "backend, path = sys.argv[1], sys.argv[2]\n"
            "db = build_rendered_database(DatasetConfig(\n"
            "    total_images=SMALL_DB_IMAGES,\n"
            "    n_categories=SMALL_DB_CATEGORIES, seed=123))\n"
            "rfs = RFSStructure.build(db.features, SMALL_RFS, seed=77)\n"
            "store = make_session_store(backend, path=path)\n"
            "session = FeedbackSession.restore(\n"
            "    rfs, store.get('handover'), config=QDConfig(), store=store)\n"
            "mark = _mark_fn(db.labels)\n"
            "shown_log = []\n"
            "for _ in range(ROUNDS - 1):\n"
            "    shown = session.display(screens=SCREENS)\n"
            "    shown_log.append(list(shown))\n"
            "    session.submit(mark(shown))\n"
            "print(json.dumps(\n"
            "    {'shown': shown_log,\n"
            "     'sig': _signature(session.finalize(K))}))\n"
        )
        env = dict(os.environ)
        repo_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, backend, store_path],
            capture_output=True,
            text=True,
            env=env,
            cwd=repo_root,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        child = json.loads(proc.stdout.strip().splitlines()[-1])
        child_shown = [tuple(s) for s in child["shown"]]
        child_sig = [
            (leaf, tuple((i, s) for i, s in items))
            for leaf, items in child["sig"]
        ]
        assert shown_log + child_shown == reference[0]
        assert child_sig == reference[1]

    def test_frontend_handoff_parity(self, rfs, rendered_db, tmp_path):
        """Every request on a different stateless worker, same ranking."""
        from repro.core.engine import QueryDecompositionEngine

        config = QDConfig()
        reference = _run_session(rfs, rendered_db.labels, config)
        engine = QueryDecompositionEngine(rendered_db, rfs, config)
        with _store("sqlite", tmp_path) as store:
            engine.attach_session_store(store)
            workers = [
                SessionFrontEnd(engine, worker_id=f"w{i}") for i in range(3)
            ]
            sid = workers[0].open(seed=SEED, session_id="hopper")
            mark = _mark_fn(rendered_db.labels)
            shown_log = []
            for rnd in range(ROUNDS):
                shown = workers[(2 * rnd + 1) % 3].display(
                    sid, screens=SCREENS
                )
                shown_log.append(tuple(shown))
                workers[(2 * rnd + 2) % 3].submit(sid, mark(shown))
            result = workers[0].finalize(sid, K)
            assert (shown_log, _signature(result)) == reference
            assert store.list_ids() == []
            engine.detach_session_store()


# ---------------------------------------------------------------------------
# Codec
# ---------------------------------------------------------------------------
class TestCodec:
    def _captured_state(self, rfs, rendered_db) -> SessionState:
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        mark = _mark_fn(rendered_db.labels)
        session.submit(mark(session.display(screens=SCREENS)))
        return session.capture()

    def test_roundtrip_is_exact(self, rfs, rendered_db):
        state = self._captured_state(rfs, rendered_db)
        assert decode_state(encode_state(state)) == state
        # Canonical text is stable under a second round-trip.
        text = encode_state(state)
        assert encode_state(decode_state(text)) == text

    def test_rng_restore_is_bit_identical(self, rfs, rendered_db):
        state = self._captured_state(rfs, rendered_db)
        draws = state.restore_rng().integers(0, 2**31, size=16)
        again = decode_state(encode_state(state)).restore_rng().integers(
            0, 2**31, size=16
        )
        assert draws.tolist() == again.tolist()

    def test_unsupported_format_rejected(self, rfs, rendered_db):
        data = self._captured_state(rfs, rendered_db).to_dict()
        data["state_format"] = STATE_FORMAT_VERSION + 1
        with pytest.raises(SessionCodecError, match="state_format"):
            SessionState.from_dict(data)

    def test_malformed_record_rejected(self):
        with pytest.raises(SessionCodecError):
            decode_state("{not json")
        with pytest.raises(SessionCodecError):
            SessionState.from_dict({"state_format": 1})  # missing fields
        with pytest.raises(SessionCodecError):
            SessionState.from_dict([1, 2, 3])

    def test_fingerprint_tracks_ranking_relevant_fields_only(self):
        base = config_fingerprint(QDConfig())
        assert config_fingerprint(QDConfig(display_size=9)) != base
        assert config_fingerprint(QDConfig(boundary_threshold=0.7)) != base
        # Executor placement never changes rankings, so it is excluded.
        assert config_fingerprint(QDConfig(executor="thread", workers=8)) == base


# ---------------------------------------------------------------------------
# Store backends
# ---------------------------------------------------------------------------
class TestStoreBackends:
    @pytest.mark.parametrize("backend", SESSION_STORE_KINDS)
    def test_crud_cycle(self, rfs, rendered_db, backend, tmp_path):
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        mark = _mark_fn(rendered_db.labels)
        session.submit(mark(session.display()))
        state = session.capture()
        with _store(backend, tmp_path) as store:
            assert len(store) == 0
            with pytest.raises(SessionNotFoundError):
                store.get(state.session_id)
            store.put(state)
            assert store.get(state.session_id) == state
            assert store.list_ids() == [state.session_id]
            # Upsert: a later checkpoint replaces the record.
            later = dataclasses.replace(state, round=state.round + 1)
            store.put(later)
            assert store.get(state.session_id).round == state.round + 1
            assert store.delete(state.session_id) is True
            assert store.delete(state.session_id) is False
            assert len(store) == 0

    @pytest.mark.parametrize("backend", SESSION_STORE_KINDS)
    def test_ttl_sweep_removes_only_stale_records(
        self, rfs, rendered_db, backend, tmp_path
    ):
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        mark = _mark_fn(rendered_db.labels)
        session.submit(mark(session.display()))
        state = session.capture()
        now = state.updated_unix
        with _store(backend, tmp_path) as store:
            store.put(dataclasses.replace(state, session_id="fresh"))
            store.put(
                dataclasses.replace(
                    state, session_id="stale", updated_unix=now - 7200.0
                )
            )
            assert store.sweep_expired(3600.0, now=now) == ["stale"]
            assert store.list_ids() == ["fresh"]
            # A second sweep is a no-op.
            assert store.sweep_expired(3600.0, now=now) == []

    def test_factory_rejects_bad_inputs(self, tmp_path):
        with pytest.raises(SessionStoreError, match="unknown"):
            make_session_store("redis", path=str(tmp_path))
        with pytest.raises(SessionStoreError, match="path"):
            make_session_store("sqlite")
        assert isinstance(make_session_store("memory"), InMemorySessionStore)

    def test_jsondir_rejects_unsafe_session_ids(self, tmp_path):
        store = JSONDirectorySessionStore(tmp_path / "dir")
        with pytest.raises(SessionStoreError, match="safe"):
            store.get("../escape")

    def test_sqlite_two_worker_checkpoint_contention(
        self, rfs, rendered_db, tmp_path
    ):
        """Two workers checkpoint interleaved dialogues into one DB file.

        WAL + busy_timeout must serialize the writes without errors or
        lost records; every surviving record must decode cleanly.
        """
        n_sessions, n_rounds = 6, 3
        store = SQLiteSessionStore(tmp_path / "contended.db")
        barrier = threading.Barrier(2)
        errors = []
        labels = rendered_db.labels

        def worker(worker_idx: int) -> None:
            try:
                barrier.wait(timeout=30)
                sessions = [
                    FeedbackSession(
                        rfs,
                        QDConfig(),
                        seed=SEED + worker_idx * 100 + i,
                        session_id=f"w{worker_idx}-s{i}",
                        store=store,
                    )
                    for i in range(n_sessions)
                ]
                mark = _mark_fn(labels)
                for _ in range(n_rounds):  # interleave rounds, not sessions
                    for session in sessions:
                        session.submit(mark(session.display()))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        assert errors == []
        ids = store.list_ids()
        assert len(ids) == 2 * n_sessions
        for session_id in ids:
            record = store.get(session_id)
            assert record.round == n_rounds
            # Each record is independently resumable.
            FeedbackSession.restore(rfs, record, config=QDConfig())
        store.close()


# ---------------------------------------------------------------------------
# Staleness fencing and lifecycle errors
# ---------------------------------------------------------------------------
class TestStalenessFencing:
    def _state_after_round(self, rfs, rendered_db) -> SessionState:
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        mark = _mark_fn(rendered_db.labels)
        session.submit(mark(session.display()))
        return session.capture()

    def test_structure_version_mismatch_rejected(self, rfs, rendered_db):
        state = self._state_after_round(rfs, rendered_db)
        stale = dataclasses.replace(
            state, structure_version=state.structure_version + 1
        )
        with pytest.raises(StaleSessionError, match="structure version"):
            FeedbackSession.restore(rfs, stale, config=QDConfig())

    def test_config_fingerprint_mismatch_rejected(self, rfs, rendered_db):
        state = self._state_after_round(rfs, rendered_db)
        with pytest.raises(StaleSessionError, match="configuration"):
            FeedbackSession.restore(
                rfs, state, config=QDConfig(display_size=9)
            )

    def test_vanished_node_rejected(self, rfs, rendered_db):
        state = self._state_after_round(rfs, rendered_db)
        ghost = dataclasses.replace(
            state,
            active=tuple(
                dataclasses.replace(sub, node_id=10**9)
                for sub in state.active
            ),
        )
        with pytest.raises(StaleSessionError, match="no longer exists"):
            FeedbackSession.restore(rfs, ghost, config=QDConfig())

    def test_finalized_record_rejected(self, rfs, rendered_db):
        state = self._state_after_round(rfs, rendered_db)
        done = dataclasses.replace(state, finalized=True)
        with pytest.raises(SessionStateError, match="finalized"):
            FeedbackSession.restore(rfs, done, config=QDConfig())

    def test_checkpoint_without_store_rejected(self, rfs):
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        with pytest.raises(SessionStateError, match="store"):
            session.checkpoint()


# ---------------------------------------------------------------------------
# Engine lifecycle: open / resume / expire
# ---------------------------------------------------------------------------
class TestEngineLifecycle:
    def test_open_requires_attached_store(self, rfs, rendered_db):
        from repro.core.engine import QueryDecompositionEngine

        engine = QueryDecompositionEngine(rendered_db, rfs, QDConfig())
        with pytest.raises(ConfigurationError, match="attach_session_store"):
            engine.open_session(seed=SEED)

    def test_open_resume_expire_flow(self, rfs, rendered_db, tmp_path):
        from repro.core.engine import QueryDecompositionEngine

        engine = QueryDecompositionEngine(rendered_db, rfs, QDConfig())
        with _store("jsondir", tmp_path) as store:
            engine.attach_session_store(store)
            session = engine.open_session(seed=SEED, session_id="flow")
            # Round-zero record is durable before any feedback.
            assert store.get("flow").round == 0
            mark = _mark_fn(rendered_db.labels)
            session.submit(mark(session.display()))
            resumed = engine.resume_session("flow")
            assert resumed.round == 1
            assert resumed.marked_ids == session.marked_ids
            assert engine.expire_sessions(3600.0) == []
            assert engine.expire_sessions(-1.0) == ["flow"]
            with pytest.raises(SessionNotFoundError):
                engine.resume_session("flow")
            engine.detach_session_store()


# ---------------------------------------------------------------------------
# Submit atomicity (the PR's bugfix)
# ---------------------------------------------------------------------------
class TestSubmitAtomicity:
    def test_rejected_batch_leaves_no_partial_state(self, rfs, rendered_db):
        """A batch with one bad id must not mark the good ones."""
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        mark = _mark_fn(rendered_db.labels)
        shown = session.display(screens=SCREENS)
        good = mark(shown)
        assert good, "oracle should mark something on the first screen"
        before_active = session.active_node_ids
        with pytest.raises(SessionStateError, match="not displayed"):
            session.submit(good + [10**9])
        # Nothing moved: no marks recorded, no decomposition happened.
        assert session.marked_ids == []
        assert session.active_node_ids == before_active
        # The round is still open — a corrected batch goes through.
        session.submit(good)
        assert session.marked_ids == sorted(good)

    def test_non_integer_ids_rejected_atomically(self, rfs, rendered_db):
        session = FeedbackSession(rfs, QDConfig(), seed=SEED)
        mark = _mark_fn(rendered_db.labels)
        shown = session.display(screens=SCREENS)
        good = mark(shown)
        with pytest.raises(SessionStateError, match="integers"):
            session.submit(good + ["not-an-id"])
        assert session.marked_ids == []
        session.submit(good)
        assert session.marked_ids == sorted(good)

    def test_resumed_session_keeps_atomicity(self, rfs, rendered_db, tmp_path):
        """The fix survives a checkpoint/resume cycle."""
        with _store("memory", tmp_path) as store:
            session = FeedbackSession(
                rfs, QDConfig(), seed=SEED, session_id="atomic", store=store
            )
            shown = session.display(screens=SCREENS)
            session.checkpoint()
            resumed = FeedbackSession.restore(
                rfs, store.get("atomic"), config=QDConfig(), store=store
            )
            with pytest.raises(SessionStateError, match="not displayed"):
                resumed.submit([10**9])
            resumed.submit(_mark_fn(rendered_db.labels)(shown))
            assert resumed.round == 1
