"""Property-based tests (hypothesis) on core data structures & invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering.kmeans import kmeans
from repro.features.normalize import FeatureNormalizer
from repro.features.texture import haar_dwt2
from repro.index.geometry import MBR
from repro.index.rstar import RStarTree
from repro.retrieval.multipoint import MultipointQuery
from repro.retrieval.topk import (
    RankedList,
    merge_ranked_lists,
    proportional_allocation,
    top_k,
)

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


def points_strategy(n_min=1, n_max=40, d_min=1, d_max=6):
    return st.integers(d_min, d_max).flatmap(
        lambda d: arrays(
            np.float64,
            st.tuples(st.integers(n_min, n_max), st.just(d)),
            elements=finite,
        )
    )


class TestMBRProperties:
    @given(points_strategy(n_min=2))
    def test_from_points_contains_all(self, pts):
        box = MBR.from_points(pts)
        for p in pts:
            assert box.contains_point(p)

    @given(points_strategy(n_min=2), points_strategy(n_min=2))
    def test_union_contains_both(self, a, b):
        if a.shape[1] != b.shape[1]:
            return
        box_a = MBR.from_points(a)
        box_b = MBR.from_points(b)
        union = box_a.union(box_b)
        assert np.all(union.lo <= box_a.lo) and np.all(
            union.hi >= box_a.hi
        )
        assert np.all(union.lo <= box_b.lo) and np.all(
            union.hi >= box_b.hi
        )

    @given(points_strategy(n_min=2))
    def test_min_distance_lower_bounds_member_distance(self, pts):
        box = MBR.from_points(pts)
        probe = pts[0] + 17.0
        mind = box.min_distance(probe)
        for p in pts:
            assert mind <= np.linalg.norm(p - probe) + 1e-6

    @given(points_strategy(n_min=2))
    def test_margin_and_diagonal_nonnegative(self, pts):
        box = MBR.from_points(pts)
        assert box.margin() >= 0
        assert box.diagonal() >= 0

    @given(points_strategy(n_min=1), finite)
    def test_enlargement_nonnegative(self, pts, shift):
        box = MBR.from_points(pts)
        other = MBR.from_point(pts[0] + shift)
        assert box.enlargement(other) >= -1e-9


class TestKMeansProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(5, 30), st.integers(2, 4)),
            elements=st.floats(-100, 100),
        ),
        st.integers(1, 5),
    )
    @settings(max_examples=25, deadline=None)
    def test_every_point_assigned_to_nearest_centroid(self, data, k):
        if data.shape[0] < k:
            return
        result = kmeans(data, k, seed=0, n_restarts=1)
        for i, point in enumerate(data):
            dists = np.linalg.norm(result.centroids - point, axis=1)
            assert dists[result.labels[i]] <= dists.min() + 1e-9

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(4, 20), st.just(3)),
            elements=st.floats(-50, 50),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_inertia_matches_labels(self, data):
        result = kmeans(data, 2, seed=1, n_restarts=1)
        manual = float(
            np.sum((data - result.centroids[result.labels]) ** 2)
        )
        assert result.inertia == pytest.approx(manual, rel=1e-9, abs=1e-9)


class TestNormalizerProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 30), st.integers(1, 5)),
            elements=st.floats(-1e3, 1e3),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_roundtrip(self, data):
        norm = FeatureNormalizer().fit(data)
        back = norm.inverse_transform(norm.transform(data))
        assert np.allclose(back, data, atol=1e-6)


class TestHaarProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(
                st.sampled_from([4, 8, 16]), st.sampled_from([4, 8, 16])
            ),
            elements=st.floats(0, 1),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_energy_preserved(self, channel):
        ll, lh, hl, hh = haar_dwt2(channel)
        total = sum(float(np.sum(b**2)) for b in (ll, lh, hl, hh))
        assert total == pytest.approx(float(np.sum(channel**2)),
                                      rel=1e-9, abs=1e-9)


class TestTopKProperties:
    @given(
        st.lists(
            st.tuples(st.floats(0, 100), st.integers(0, 1000)),
            min_size=1, max_size=50,
        ),
        st.integers(1, 20),
    )
    def test_topk_returns_minimum_scores(self, pairs, k):
        scores = np.array([s for s, _ in pairs])
        ids = [i for _, i in pairs]
        ranked = top_k(scores, ids, k)
        cutoff = sorted(scores)[: min(k, len(pairs))][-1]
        assert all(item.score <= cutoff + 1e-12 for item in ranked)

    @given(
        st.lists(
            st.lists(
                st.tuples(st.floats(0, 10), st.integers(0, 50)),
                max_size=10,
            ),
            max_size=5,
        ),
        st.integers(1, 10),
    )
    def test_merge_is_sorted_and_unique(self, list_of_pairs, k):
        lists = [RankedList.from_pairs(p) for p in list_of_pairs]
        merged = merge_ranked_lists(lists, k)
        scores = [it.score for it in merged]
        assert scores == sorted(scores)
        ids = merged.ids()
        assert len(ids) == len(set(ids))
        assert len(merged) <= k


class TestAllocationProperties:
    @given(
        st.lists(st.integers(0, 20), min_size=0, max_size=10),
        st.integers(0, 200),
    )
    def test_allocation_totals_and_bounds(self, sizes, total):
        out = proportional_allocation(sizes, total)
        assert len(out) == len(sizes)
        assert all(v >= 0 for v in out)
        nonempty = sum(1 for s in sizes if s > 0)
        if sizes and (sum(sizes) > 0) and total >= nonempty:
            assert sum(out) == total
        if sizes and sum(sizes) == 0:
            assert sum(out) == total

    @given(st.lists(st.integers(1, 20), min_size=2, max_size=6))
    def test_monotone_in_weight(self, sizes):
        total = 10 * len(sizes)
        out = proportional_allocation(sizes, total)
        for i, a in enumerate(sizes):
            for j, b in enumerate(sizes):
                if a > b:
                    assert out[i] >= out[j] - 1


class TestMultipointProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 8), st.just(3)),
            elements=st.floats(-100, 100),
        ),
        arrays(np.float64, st.just((3,)), elements=st.floats(-100, 100)),
    )
    @settings(max_examples=40, deadline=None)
    def test_distance_bounded_by_extremes(self, points, cand):
        mq = MultipointQuery(points)
        agg = mq.distance_one(cand)
        individual = np.linalg.norm(points - cand, axis=1)
        assert individual.min() - 1e-9 <= agg <= individual.max() + 1e-9


class TestTreeProperties:
    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(1, 120), st.just(3)),
            elements=st.floats(-1e3, 1e3),
        )
    )
    @settings(max_examples=15, deadline=None)
    def test_insert_then_knn_finds_exact_match(self, pts):
        tree = RStarTree(dims=3, max_entries=6)
        for i, p in enumerate(pts):
            tree.insert(p, i)
        tree.validate()
        probe = pts[len(pts) // 2]
        best = tree.knn(probe, 1)[0]
        assert best[0] == pytest.approx(0.0, abs=1e-9)

    @given(
        arrays(
            np.float64,
            st.tuples(st.integers(2, 200), st.just(4)),
            elements=st.floats(-1e3, 1e3),
        ),
        st.integers(1, 10),
    )
    @settings(max_examples=15, deadline=None)
    def test_bulk_load_knn_matches_brute_force(self, pts, k):
        tree = RStarTree(dims=4, max_entries=8)
        tree.bulk_load(pts, seed=0)
        tree.validate()
        probe = pts[0] + 1.0
        got = tree.knn(probe, k)
        dists = np.sort(np.linalg.norm(pts - probe, axis=1))
        expected = dists[: min(k, len(pts))]
        assert np.allclose(sorted(d for d, _ in got), expected)
