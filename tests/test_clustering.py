"""Tests for the clustering substrate: k-means, PCA, quality metrics."""

import numpy as np
import pytest

from repro.clustering.kmeans import KMeans, kmeans
from repro.clustering.pca import PCA
from repro.clustering.quality import (
    cluster_separation_ratio,
    pairwise_centroid_distances,
    silhouette_score,
)
from repro.errors import ClusteringError


def _blobs(rng, centers, n_per=30, spread=0.2):
    pts, labels = [], []
    for i, c in enumerate(centers):
        pts.append(rng.normal(c, spread, size=(n_per, len(c))))
        labels.extend([i] * n_per)
    return np.vstack(pts), np.array(labels)


class TestKMeans:
    def test_recovers_well_separated_blobs(self, rng):
        data, truth = _blobs(rng, [(0, 0), (10, 10), (-10, 10)])
        result = kmeans(data, 3, seed=1)
        # Each true blob maps to exactly one k-means cluster.
        for blob in range(3):
            assigned = result.labels[truth == blob]
            assert len(set(assigned.tolist())) == 1
        assert result.inertia < 100

    def test_labels_shape_and_range(self, rng):
        data = rng.normal(size=(50, 4))
        result = kmeans(data, 5, seed=0)
        assert result.labels.shape == (50,)
        assert set(result.labels.tolist()) <= set(range(5))

    def test_k_equals_n(self, rng):
        data = rng.normal(size=(6, 2))
        result = kmeans(data, 6, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_k_one_centroid_is_mean(self, rng):
        data = rng.normal(size=(40, 3))
        result = kmeans(data, 1, seed=0)
        assert np.allclose(result.centroids[0], data.mean(axis=0))

    def test_k_larger_than_n_rejected(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.normal(size=(3, 2)), 4)

    def test_k_zero_rejected(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.normal(size=(3, 2)), 0)

    def test_zero_restarts_rejected(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.normal(size=(5, 2)), 2, n_restarts=0)

    def test_deterministic_under_seed(self, rng):
        data = rng.normal(size=(60, 3))
        a = kmeans(data, 4, seed=9)
        b = kmeans(data, 4, seed=9)
        assert np.array_equal(a.labels, b.labels)
        assert a.inertia == b.inertia

    def test_duplicate_points_handled(self):
        data = np.ones((10, 2))
        result = kmeans(data, 3, seed=0)
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_cluster_sizes_sum_to_n(self, rng):
        data = rng.normal(size=(45, 3))
        result = kmeans(data, 4, seed=2)
        assert result.cluster_sizes().sum() == 45

    def test_inertia_decreases_with_k(self, rng):
        data = rng.normal(size=(100, 4))
        inertias = [
            kmeans(data, k, seed=3, n_restarts=5).inertia
            for k in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))

    def test_wrapper_fit_predict(self, rng):
        data, _ = _blobs(rng, [(0, 0), (8, 8)])
        model = KMeans(k=2, seed=0).fit(data)
        pred = model.predict(np.array([[0.1, -0.1], [7.9, 8.2]]))
        assert pred[0] != pred[1]

    def test_wrapper_use_before_fit(self):
        with pytest.raises(ClusteringError):
            KMeans(k=2).centroids


class TestPCA:
    def test_projects_to_requested_dims(self, rng):
        data = rng.normal(size=(30, 6))
        proj = PCA(n_components=2).fit_transform(data)
        assert proj.shape == (30, 2)

    def test_first_component_captures_main_axis(self, rng):
        t = rng.normal(size=200)
        data = np.column_stack([t, 2 * t, 0.01 * rng.normal(size=200)])
        pca = PCA(n_components=1).fit(data)
        assert pca.explained_variance_ratio_[0] > 0.99

    def test_components_are_orthonormal(self, rng):
        data = rng.normal(size=(50, 5))
        pca = PCA(n_components=3).fit(data)
        gram = pca.components_ @ pca.components_.T
        assert np.allclose(gram, np.eye(3), atol=1e-9)

    def test_transform_centres_data(self, rng):
        data = rng.normal(5.0, 1.0, size=(100, 4))
        proj = PCA(n_components=2).fit_transform(data)
        assert np.allclose(proj.mean(axis=0), 0.0, atol=1e-9)

    def test_inverse_transform_full_rank_roundtrip(self, rng):
        data = rng.normal(size=(20, 3))
        pca = PCA(n_components=3).fit(data)
        back = pca.inverse_transform(pca.transform(data))
        assert np.allclose(back, data, atol=1e-9)

    def test_deterministic_sign(self, rng):
        data = rng.normal(size=(40, 4))
        a = PCA(n_components=2).fit(data).components_
        b = PCA(n_components=2).fit(data).components_
        assert np.allclose(a, b)

    def test_too_many_components_rejected(self, rng):
        with pytest.raises(ClusteringError):
            PCA(n_components=5).fit(rng.normal(size=(3, 4)))

    def test_zero_components_rejected(self):
        with pytest.raises(ClusteringError):
            PCA(n_components=0)

    def test_use_before_fit_raises(self, rng):
        with pytest.raises(ClusteringError):
            PCA(n_components=1).transform(rng.normal(size=(3, 2)))

    def test_variance_ratios_sorted_and_bounded(self, rng):
        data = rng.normal(size=(60, 6)) * np.array([5, 4, 3, 2, 1, 0.5])
        pca = PCA(n_components=4).fit(data)
        ratios = pca.explained_variance_ratio_
        assert np.all(ratios[:-1] >= ratios[1:] - 1e-12)
        assert 0 < ratios.sum() <= 1.0 + 1e-12


class TestQualityMetrics:
    def test_centroid_distances_symmetric(self, rng):
        data, labels = _blobs(rng, [(0, 0), (5, 0), (0, 5)])
        dist = pairwise_centroid_distances(data, labels)
        assert dist.shape == (3, 3)
        assert np.allclose(dist, dist.T)
        assert np.allclose(np.diag(dist), 0.0)

    def test_centroid_distances_match_geometry(self, rng):
        data, labels = _blobs(rng, [(0, 0), (10, 0)], spread=0.01)
        dist = pairwise_centroid_distances(data, labels)
        assert dist[0, 1] == pytest.approx(10.0, abs=0.1)

    def test_separation_high_for_far_blobs(self, rng):
        data, labels = _blobs(rng, [(0, 0), (20, 0)], spread=0.5)
        assert cluster_separation_ratio(data, labels) > 5

    def test_separation_low_for_overlapping_blobs(self, rng):
        data, labels = _blobs(rng, [(0, 0), (0.5, 0)], spread=1.0)
        assert cluster_separation_ratio(data, labels) < 1

    def test_separation_needs_two_clusters(self, rng):
        data = rng.normal(size=(10, 2))
        with pytest.raises(ClusteringError):
            cluster_separation_ratio(data, np.zeros(10, dtype=int))

    def test_silhouette_near_one_for_far_blobs(self, rng):
        data, labels = _blobs(rng, [(0, 0), (50, 0)], spread=0.1)
        assert silhouette_score(data, labels) > 0.95

    def test_silhouette_near_zero_for_random_labels(self, rng):
        data = rng.normal(size=(60, 2))
        labels = rng.integers(0, 2, size=60)
        assert abs(silhouette_score(data, labels)) < 0.2

    def test_silhouette_needs_two_clusters(self, rng):
        with pytest.raises(ClusteringError):
            silhouette_score(rng.normal(size=(10, 2)),
                             np.zeros(10, dtype=int))

    def test_label_shape_mismatch_rejected(self, rng):
        with pytest.raises(ClusteringError):
            silhouette_score(rng.normal(size=(10, 2)),
                             np.zeros(5, dtype=int))

    def test_singleton_cluster_silhouette_zero_contribution(self, rng):
        data = np.vstack([rng.normal(0, 0.1, (10, 2)),
                          np.array([[50.0, 50.0]])])
        labels = np.array([0] * 10 + [1])
        # Does not raise; the singleton contributes 0.
        score = silhouette_score(data, labels)
        assert -1.0 <= score <= 1.0
