"""Tests for the real-Corel directory loader and Netpbm I/O."""

import numpy as np
import pytest

from repro.datasets.corel_loader import (
    load_corel_directory,
    read_netpbm,
    square_resize,
    write_ppm,
)
from repro.errors import DatasetError
from repro.imaging.scenes import render_scene


class TestNetpbmIO:
    def test_ppm_roundtrip(self, tmp_path, rng):
        image = rng.random((12, 16, 3))
        path = tmp_path / "img.ppm"
        write_ppm(path, image)
        back = read_netpbm(path)
        assert back.shape == (12, 16, 3)
        assert np.allclose(back, image, atol=1 / 255 + 1e-9)

    def test_ascii_p3(self, tmp_path):
        path = tmp_path / "img.ppm"
        path.write_text(
            "P3\n# a comment\n2 2\n255\n"
            "255 0 0  0 255 0\n0 0 255  255 255 255\n"
        )
        image = read_netpbm(path)
        assert image.shape == (2, 2, 3)
        assert np.allclose(image[0, 0], [1, 0, 0])
        assert np.allclose(image[1, 1], [1, 1, 1])

    def test_ascii_p2_grayscale(self, tmp_path):
        path = tmp_path / "img.pgm"
        path.write_text("P2\n2 1\n255\n0 255\n")
        image = read_netpbm(path)
        assert image.shape == (1, 2, 3)
        assert np.allclose(image[0, 0], 0.0)
        assert np.allclose(image[0, 1], 1.0)

    def test_binary_p5_grayscale(self, tmp_path):
        path = tmp_path / "img.pgm"
        path.write_bytes(b"P5\n2 2\n255\n" + bytes([0, 64, 128, 255]))
        image = read_netpbm(path)
        assert image.shape == (2, 2, 3)
        assert image[1, 1, 0] == pytest.approx(1.0)

    def test_16bit_p6(self, tmp_path):
        header = b"P6\n1 1\n65535\n"
        pixel = (65535).to_bytes(2, "big") * 3
        path = tmp_path / "deep.ppm"
        path.write_bytes(header + pixel)
        image = read_netpbm(path)
        assert np.allclose(image[0, 0], 1.0)

    def test_comments_in_header(self, tmp_path, rng):
        image = rng.random((4, 4, 3))
        path = tmp_path / "img.ppm"
        write_ppm(path, image)
        data = path.read_bytes().replace(
            b"P6\n", b"P6\n# generated\n", 1
        )
        path.write_bytes(data)
        assert read_netpbm(path).shape == (4, 4, 3)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "bad.ppm"
        path.write_bytes(b"XX\n1 1\n255\nabc")
        with pytest.raises(DatasetError):
            read_netpbm(path)

    def test_truncated_rejected(self, tmp_path):
        path = tmp_path / "short.ppm"
        path.write_bytes(b"P6\n4 4\n255\n\x00\x01")
        with pytest.raises(DatasetError):
            read_netpbm(path)

    def test_write_rejects_bad_shape(self, tmp_path):
        with pytest.raises(DatasetError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 4)))


class TestSquareResize:
    def test_downsample(self, rng):
        image = rng.random((64, 64, 3))
        out = square_resize(image, 32)
        assert out.shape == (32, 32, 3)

    def test_center_crop_wide(self):
        image = np.zeros((10, 30, 3))
        image[:, 10:20] = 1.0  # bright centre band
        out = square_resize(image, 10)
        assert out.mean() == pytest.approx(1.0)

    def test_identity_when_sizes_match(self, rng):
        image = rng.random((16, 16, 3))
        assert np.array_equal(square_resize(image, 16), image)

    def test_upsample(self, rng):
        image = rng.random((8, 8, 3))
        assert square_resize(image, 16).shape == (16, 16, 3)


class TestLoadCorelDirectory:
    @pytest.fixture(scope="class")
    def corel_root(self, tmp_path_factory):
        """A tiny on-disk Corel-style tree of rendered scenes."""
        root = tmp_path_factory.mktemp("corel")
        rng = np.random.default_rng(0)
        for category in ("bird_owl", "rose_red", "mountain_snow"):
            folder = root / category
            folder.mkdir()
            for i in range(6):
                write_ppm(
                    folder / f"img{i:03d}.ppm",
                    render_scene(category, 48, rng),
                )
        (root / "empty_category").mkdir()
        (root / "not_a_dir.txt").write_text("ignore me")
        return root

    def test_loads_all_images(self, corel_root):
        db = load_corel_directory(corel_root)
        assert db.size == 18
        assert sorted(db.category_names) == [
            "bird_owl", "mountain_snow", "rose_red",
        ]

    def test_empty_category_skipped(self, corel_root):
        db = load_corel_directory(corel_root)
        assert "empty_category" not in db.category_names

    def test_max_per_category(self, corel_root):
        db = load_corel_directory(corel_root, max_per_category=2)
        assert db.size == 6

    def test_loaded_features_cluster_by_category(self, corel_root):
        """Real files through the full pipeline still cluster."""
        from repro.clustering.quality import silhouette_score

        db = load_corel_directory(corel_root)
        score = silhouette_score(db.features, db.labels)
        assert score > 0.2

    def test_searchable_end_to_end(self, corel_root):
        from repro.config import RFSConfig
        from repro.index.rfs import RFSStructure

        db = load_corel_directory(corel_root)
        rfs = RFSStructure.build(
            db.features,
            RFSConfig(node_max_entries=8, node_min_entries=4,
                      leaf_subclusters=2,
                      representative_fraction=0.5),
            seed=0,
        )
        owl = int(db.ids_of_category("bird_owl")[0])
        leaf = rfs.leaf_of_item(owl)
        got = rfs.localized_knn(leaf, db.features[owl], 3)
        assert got[0][1] == owl

    def test_missing_directory_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            load_corel_directory(tmp_path / "nope")

    def test_no_images_rejected(self, tmp_path):
        (tmp_path / "cat").mkdir()
        with pytest.raises(DatasetError):
            load_corel_directory(tmp_path)
