"""Span profiler: sampling, collapsed stacks, resource attributes.

Covers the profiler contract: live sampling of open-span stacks into
flamegraph-consumable collapsed text, the deterministic no-op behaviour
against a :class:`NullTracer`, the exact after-the-fact
:func:`collapsed_from_trace` equivalent, the RSS/disk resource sampler,
and the CLI ``--profile`` wiring.
"""

import threading
import time

import pytest

from repro import obs
from repro.obs.profile import (
    SpanProfiler,
    collapsed_from_trace,
    read_rss_bytes,
)
from repro.obs.trace import NULL_TRACER


class TestSpanProfiler:
    def test_samples_live_span_stacks(self):
        tracer = obs.Tracer()
        with SpanProfiler(tracer, interval_s=0.001) as prof:
            with tracer.span("outer"):
                with tracer.span("inner"):
                    time.sleep(0.03)
        assert prof.n_samples > 0
        assert ("outer", "inner") in prof.stack_counts
        text = prof.collapsed()
        assert "outer;inner " in text
        assert text.endswith("\n")
        # Every line is "path count" with a positive integer count.
        for line in text.splitlines():
            path, count = line.rsplit(" ", 1)
            assert path
            assert int(count) > 0

    def test_null_tracer_yields_empty_output_deterministically(self):
        """Under Null defaults the profiler must be an exact no-op."""
        for _ in range(3):
            with SpanProfiler(NULL_TRACER, interval_s=0.001) as prof:
                time.sleep(0.01)
            assert prof.stack_counts == {}
            assert prof.collapsed() == ""
            assert prof.n_samples > 0  # it did sample; there was nothing

    def test_defaults_to_installed_tracer(self):
        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            prof = SpanProfiler(interval_s=0.001).start()
            assert prof.tracer is tracer
            prof.stop()

    def test_start_twice_raises(self):
        prof = SpanProfiler(NULL_TRACER, interval_s=0.001).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                prof.start()
        finally:
            prof.stop()

    def test_stop_annotates_root_spans_with_resources(self):
        tracer = obs.Tracer()
        prof = SpanProfiler(tracer, interval_s=0.001).start()
        with tracer.span("session"):
            time.sleep(0.01)
        prof.stop()
        (root,) = tracer.spans
        assert root.attributes["profile_samples"] == prof.n_samples
        assert root.attributes["profile_rss_peak_bytes"] > 0
        assert "profile_bytes_read" not in root.attributes  # no disk

    def test_disk_model_deltas_recorded(self):
        class FakeDisk:
            bytes_read = 1000
            physical_reads = 5

        disk = FakeDisk()
        tracer = obs.Tracer()
        prof = SpanProfiler(tracer, interval_s=0.001, disk=disk).start()
        with tracer.span("round"):
            disk.bytes_read += 4096
            disk.physical_reads += 2
            time.sleep(0.01)
        prof.stop()
        # Deltas over the profiled window, not absolute totals.
        assert prof.bytes_read == 4096
        assert prof.physical_reads == 2
        (root,) = tracer.spans
        assert root.attributes["profile_bytes_read"] == 4096
        assert root.attributes["profile_physical_reads"] == 2

    def test_samples_worker_thread_stacks(self):
        tracer = obs.Tracer()
        release = threading.Event()

        def worker() -> None:
            with tracer.span("subquery"):
                release.wait(1.0)

        with SpanProfiler(tracer, interval_s=0.001) as prof:
            thread = threading.Thread(target=worker)
            thread.start()
            time.sleep(0.03)
            release.set()
            thread.join()
        assert ("subquery",) in prof.stack_counts

    def test_write_collapsed(self, tmp_path):
        tracer = obs.Tracer()
        with SpanProfiler(tracer, interval_s=0.001) as prof:
            with tracer.span("a"):
                time.sleep(0.02)
        path = tmp_path / "prof.folded"
        n_lines = prof.write_collapsed(path)
        assert n_lines == len(path.read_text().splitlines())
        assert path.read_text() == prof.collapsed()


class TestCollapsedFromTrace:
    def _trace(self):
        return [
            {
                "name": "session",
                "duration": 0.010,
                "children": [
                    {"name": "round", "duration": 0.004, "children": []},
                    {"name": "round", "duration": 0.003, "children": []},
                ],
            }
        ]

    def test_exact_self_time_in_microseconds(self):
        text = collapsed_from_trace(self._trace())
        lines = dict(
            line.rsplit(" ", 1) for line in text.splitlines()
        )
        # session self time = 10ms - (4ms + 3ms) = 3ms; rounds add up.
        assert int(lines["session"]) == 3000
        assert int(lines["session;round"]) == 7000

    def test_deterministic_given_a_trace(self):
        trace = self._trace()
        assert collapsed_from_trace(trace) == collapsed_from_trace(trace)

    def test_zero_self_time_paths_omitted(self):
        trace = [
            {
                "name": "wrapper",
                "duration": 0.002,
                "children": [
                    {"name": "work", "duration": 0.002, "children": []}
                ],
            }
        ]
        text = collapsed_from_trace(trace)
        assert text == "wrapper;work 2000\n"

    def test_accepts_a_tracer(self):
        tracer = obs.Tracer()
        with tracer.span("outer"):
            time.sleep(0.002)
        text = collapsed_from_trace(tracer)
        assert text.startswith("outer ")

    def test_empty_trace(self):
        assert collapsed_from_trace([]) == ""


def test_read_rss_bytes_positive():
    rss = read_rss_bytes()
    assert rss > 0
    # Sanity: a Python process with numpy loaded holds at least a few MB
    # and far less than a TB.
    assert 1 << 20 < rss < 1 << 40


def test_cli_profile_flag_writes_collapsed_output(tmp_path):
    """``--profile FILE`` samples the run and writes collapsed stacks."""
    from repro.cli import _obs_scope, build_parser

    parser = build_parser()
    out = tmp_path / "prof.folded"
    args = parser.parse_args(
        ["query", "--db", "x.npz", "--query", "bird",
         "--profile", str(out)]
    )
    assert args.profile == str(out)
    with _obs_scope(args):
        tracer = obs.get_tracer()
        assert tracer.enabled  # --profile alone installs a real tracer
        with tracer.span("session"):
            with tracer.span("round"):
                time.sleep(0.03)
    text = out.read_text()
    assert "session" in text
