"""Unit tests for the precision/recall sweep experiment."""

import pytest

from repro.datasets.queryset import get_query
from repro.errors import EvaluationError
from repro.eval.experiments import run_pr_sweep


@pytest.fixture(scope="module")
def sweep(engine):
    return run_pr_sweep(
        engine,
        queries=[get_query("bird"), get_query("rose")],
        k_fractions=(0.5, 1.0, 2.0),
        seed=3,
    )


class TestPrSweep:
    def test_point_grid_complete(self, sweep):
        assert len(sweep.points) == 2 * 3  # techniques x fractions
        assert {p.technique for p in sweep.points} == {"MV", "QD"}

    def test_recall_monotone_in_k(self, sweep):
        for technique in ("MV", "QD"):
            series = sweep.series(technique)
            recalls = [p.recall for p in series]
            assert recalls == sorted(recalls)

    def test_metrics_bounded(self, sweep):
        for p in sweep.points:
            assert 0.0 <= p.precision <= 1.0
            assert 0.0 <= p.recall <= 1.0

    def test_precision_equals_recall_at_gt(self, sweep):
        """At k = ground truth, precision == recall per query, and the
        averages stay close."""
        for technique in ("MV", "QD"):
            point = next(
                p for p in sweep.series(technique)
                if p.k_fraction == 1.0
            )
            assert point.precision == pytest.approx(
                point.recall, abs=0.05
            )

    def test_qd_dominates(self, sweep):
        mv = {p.k_fraction: p for p in sweep.series("MV")}
        qd = {p.k_fraction: p for p in sweep.series("QD")}
        for fraction in qd:
            assert qd[fraction].precision >= mv[fraction].precision - 0.05

    def test_format(self, sweep):
        text = sweep.format()
        assert "Precision/recall" in text
        assert "QD" in text

    def test_invalid_fractions_rejected(self, engine):
        with pytest.raises(EvaluationError):
            run_pr_sweep(engine, k_fractions=(), seed=0)
        with pytest.raises(EvaluationError):
            run_pr_sweep(engine, k_fractions=(0.0,), seed=0)
