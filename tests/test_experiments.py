"""Tests for the experiment drivers (small-scale sanity of every table/figure)."""

import numpy as np
import pytest

from repro.datasets.queryset import TABLE1_QUERIES, get_query
from repro.errors import EvaluationError
from repro.eval.experiments import (
    CASE_STUDIES,
    run_case_studies,
    run_figure1,
    run_scalability,
    run_table1,
    run_table2,
)


@pytest.fixture(scope="module")
def quality_queries():
    """A 4-query subset keeping the experiment tests quick."""
    return [get_query(n) for n in ("bird", "airplane", "rose", "computer")]


class TestTable1:
    def test_rows_and_averages(self, engine, quality_queries):
        result = run_table1(
            engine, queries=quality_queries, trials=1, seed=0
        )
        assert len(result.rows) == 4
        avg = result.averages()
        assert 0.0 <= avg.mv_precision <= 1.0
        assert 0.0 <= avg.qd_gtir <= 1.0

    def test_qd_beats_mv_on_average(self, engine, quality_queries):
        result = run_table1(
            engine, queries=quality_queries, trials=1, seed=1
        )
        avg = result.averages()
        assert avg.qd_precision > avg.mv_precision
        assert avg.qd_gtir >= avg.mv_gtir

    def test_format_contains_all_queries(self, engine, quality_queries):
        result = run_table1(
            engine, queries=quality_queries, trials=1, seed=2
        )
        text = result.format()
        for query in quality_queries:
            assert query.description in text
        assert "Average" in text

    def test_empty_rows_average_raises(self):
        from repro.eval.experiments import Table1Result

        with pytest.raises(EvaluationError):
            Table1Result(rows=[]).averages()


class TestTable2:
    def test_row_structure(self, engine, quality_queries):
        result = run_table2(
            engine, queries=quality_queries, trials=1, seed=0
        )
        assert [r.round for r in result.rows] == [1, 2, 3]
        assert result.rows[0].qd_precision is None
        assert result.rows[1].qd_precision is None
        assert result.rows[2].qd_precision is not None

    def test_qd_gtir_monotone(self, engine, quality_queries):
        result = run_table2(
            engine, queries=quality_queries, trials=1, seed=1
        )
        gtirs = [r.qd_gtir for r in result.rows]
        assert all(a <= b + 1e-9 for a, b in zip(gtirs, gtirs[1:]))

    def test_format(self, engine, quality_queries):
        text = run_table2(
            engine, queries=quality_queries, trials=1, seed=2
        ).format()
        assert "n/a" in text
        assert "Round" in text


class TestFigure1:
    def test_pose_clusters_distinct(self, rendered_db):
        result = run_figure1(rendered_db)
        assert result.silhouette > 0.1
        assert result.projection.shape[1] == 3
        assert result.knn_pose_purity > 0.5

    def test_centroid_distance_matrix_shape(self, rendered_db):
        result = run_figure1(rendered_db)
        assert result.centroid_distances.shape == (4, 4)
        assert np.allclose(np.diag(result.centroid_distances), 0.0)

    def test_format_mentions_poses(self, rendered_db):
        text = run_figure1(rendered_db).format()
        assert "sedan_side" in text
        assert "silhouette" in text

    def test_missing_pose_raises(self, synthetic_db):
        with pytest.raises(EvaluationError):
            run_figure1(synthetic_db)


class TestCaseStudies:
    def test_three_queries_two_techniques(self, engine):
        result = run_case_studies(engine, seed=0)
        assert len(result.rows) == 2 * len(CASE_STUDIES)
        assert {r.technique for r in result.rows} == {"MV", "QD"}

    def test_paper_k_values(self, engine):
        result = run_case_studies(engine, seed=0)
        ks = sorted({r.k for r in result.rows})
        assert ks == [8, 16, 24]

    def test_format(self, engine):
        text = run_case_studies(engine, seed=0).format()
        assert "top-8" in text and "top-24" in text


class TestScalability:
    def test_points_and_linearity(self):
        result = run_scalability(
            db_sizes=(400, 800), n_queries=5, seed=3
        )
        assert len(result.points) == 2
        assert result.points[0].db_size == 400
        assert all(p.overall_query_time > 0 for p in result.points)
        assert -1.0 <= result.linearity_r2() <= 1.0

    def test_rfs_iteration_cheaper_than_global_knn(self):
        """The §1.2 claim: RFS feedback beats per-round global k-NN."""
        result = run_scalability(
            db_sizes=(2000,), n_queries=10, seed=4
        )
        point = result.points[0]
        assert point.iteration_time < point.global_knn_round_time * 2

    def test_format_figures(self):
        result = run_scalability(db_sizes=(400,), n_queries=3, seed=5)
        assert "Figure 10" in result.format_figure10()
        assert "Figure 11" in result.format_figure11()

    def test_linearity_needs_two_points(self):
        result = run_scalability(db_sizes=(400,), n_queries=3, seed=6)
        with pytest.raises(EvaluationError):
            result.linearity_r2()


class TestQuerySetCoverage:
    def test_all_eleven_queries_runnable(self, engine):
        """Every Table-1 query completes a QD session on the test db."""
        from repro.eval.protocol import run_qd_session

        for query in TABLE1_QUERIES:
            result, records = run_qd_session(engine, query, seed=11)
            assert len(records) == 3
            assert result.stats["gtir"] > 0
