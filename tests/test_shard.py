"""Tests for the sharded scatter-gather engine (repro.shard).

Covers the partitioner (determinism, uneven partitions, validation),
the pruned per-shard structures (global node identity, shared leaf
rows, dropped representatives), the router surface (store routing,
fingerprints, refusal of a global store) and — the acceptance property,
targeted by the no-skip ``Parity`` gate in ``scripts/check.sh`` —
sharded rankings staying **bit-identical** to single-node across shard
counts (1/2/7 and the gate's 1/2/4), partition strategies, executors,
store backings, cache states, tie-heavy distances, and a mid-session
resume handed off between routers with different shard counts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cache import SubqueryResultCache
from repro.config import CacheConfig, QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import build_synthetic_database
from repro.errors import ConfigurationError
from repro.exec import BatchQuery, ProcessSubqueryExecutor
from repro.index.rfs import RFSStructure
from repro.shard import (
    Shard,
    ShardedEngine,
    ShardedRFS,
    build_shard_structure,
    dfs_leaves,
    partition_leaves,
)
from repro.store import FeatureStore

N_IMAGES = 600
SEED = 2006
RFS_CONFIG = RFSConfig(
    node_max_entries=40, node_min_entries=16, leaf_subclusters=3
)

_EXECUTORS = ["serial", "thread"] + (
    ["process"] if ProcessSubqueryExecutor.fork_available() else []
)
#: The satellite's shard counts (1/2/7) union the gate's (1/2/4).
_SHARD_COUNTS = [1, 2, 4, 7]


@pytest.fixture(scope="module")
def database():
    return build_synthetic_database(
        N_IMAGES, n_categories=24, seed=SEED
    )


@pytest.fixture(scope="module")
def base_rfs(database):
    return _build_rfs(database)


def _build_rfs(database) -> RFSStructure:
    return RFSStructure.build(database.features, RFS_CONFIG, seed=SEED)


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _mark_fn(database):
    relevant = set(np.flatnonzero(database.labels == 3).tolist())
    relevant |= set(np.flatnonzero(database.labels == 5).tolist())
    return lambda shown: [i for i in shown if i in relevant]


def _run_session(engine, database, *, k=60, seed=11):
    return _signature(
        engine.run_scripted(_mark_fn(database), k=k, seed=seed)
    )


def _sharded(
    database,
    *,
    shards,
    executor="serial",
    store="inmem",
    partition="contiguous",
    cache=False,
    parallel_fanout=True,
) -> ShardedEngine:
    return ShardedEngine.build(
        database,
        RFS_CONFIG,
        QDConfig(executor=executor, workers=2),
        shards=shards,
        partition=partition,
        parallel_fanout=parallel_fanout,
        seed=SEED,
        store=store,
        cache=CacheConfig(enabled=True, capacity_mb=8) if cache else None,
    )


# ----------------------------------------------------------------------
# Partitioner
# ----------------------------------------------------------------------
class TestPartition:
    def test_contiguous_covers_all_leaves_unevenly(self, base_rfs):
        leaves = dfs_leaves(base_rfs.root)
        assignment = partition_leaves(leaves, 7)
        flat = [i for bucket in assignment.shards for i in bucket]
        assert flat == [leaf.node_id for leaf in leaves]
        assert all(assignment.shards)  # no empty shard
        sizes = {leaf.node_id: leaf.size for leaf in leaves}
        per_shard = [
            sum(sizes[i] for i in bucket) for bucket in assignment.shards
        ]
        assert sum(per_shard) == base_rfs.root.size
        # Leaf-granular cuts cannot be perfectly even — the point of
        # the parity suite is that uneven is fine.
        assert len(set(per_shard)) > 1

    def test_roundrobin_interleaves(self, base_rfs):
        leaves = dfs_leaves(base_rfs.root)
        assignment = partition_leaves(leaves, 3, "roundrobin")
        assert assignment.shards[0][0] == leaves[0].node_id
        assert assignment.shards[1][0] == leaves[1].node_id
        assert assignment.shards[2][0] == leaves[2].node_id

    def test_deterministic(self, base_rfs):
        leaves = dfs_leaves(base_rfs.root)
        assert partition_leaves(leaves, 4) == partition_leaves(leaves, 4)

    def test_validation(self, base_rfs):
        leaves = dfs_leaves(base_rfs.root)
        with pytest.raises(ConfigurationError):
            partition_leaves(leaves, 0)
        with pytest.raises(ConfigurationError):
            partition_leaves(leaves, len(leaves) + 1)
        with pytest.raises(ConfigurationError):
            partition_leaves(leaves, 2, "hash")

    def test_pruned_structure_keeps_global_identity(self, base_rfs):
        leaves = dfs_leaves(base_rfs.root)
        wanted = [leaf.node_id for leaf in leaves[:3]]
        shard_rfs = build_shard_structure(base_rfs, wanted)
        for node_id, node in shard_rfs.nodes.items():
            original = base_rfs.get_node(node_id)
            assert node.level == original.level
            assert node.mbr is original.mbr
            assert node.center is original.center
            assert node.representatives == []
            if node.is_leaf:
                # Leaf rows are *shared*, order untouched — the block
                # identity the store parity rests on.
                assert node.item_ids is original.item_ids
            else:
                assert np.array_equal(
                    node.item_ids, np.sort(node.item_ids)
                )
        kept = {leaf.node_id for leaf in dfs_leaves(shard_rfs.root)}
        assert kept == set(wanted)
        assert shard_rfs.structure_version == base_rfs.structure_version
        assert shard_rfs.io is base_rfs.io

    def test_pruned_structure_rejects_non_leaves(self, base_rfs):
        with pytest.raises(ConfigurationError):
            build_shard_structure(base_rfs, [base_rfs.root.node_id])
        with pytest.raises(ConfigurationError):
            build_shard_structure(base_rfs, [])


# ----------------------------------------------------------------------
# Router surface
# ----------------------------------------------------------------------
class TestShardedRFS:
    @pytest.fixture(scope="class")
    def router(self, database):
        engine = _sharded(database, shards=3)
        yield engine.sharded_rfs
        engine.close()

    def test_rejects_global_store(self, router, base_rfs):
        with pytest.raises(ConfigurationError):
            router.attach_store(FeatureStore.build(base_rfs))

    def test_rejects_mixed_shard_backings(self, database, base_rfs):
        leaves = dfs_leaves(base_rfs.root)
        cut = len(leaves) // 2
        with_store = build_shard_structure(
            base_rfs, [leaf.node_id for leaf in leaves[:cut]]
        )
        with_store.attach_store(
            FeatureStore.build(with_store), validate=False
        )
        without = build_shard_structure(
            base_rfs, [leaf.node_id for leaf in leaves[cut:]]
        )
        with pytest.raises(ConfigurationError):
            ShardedRFS(
                base_rfs, [Shard(0, with_store), Shard(1, without)]
            )

    def test_vectors_for_matches_global_store(self, router, base_rfs):
        global_store = FeatureStore.build(base_rfs)
        ids = np.arange(0, N_IMAGES, 7, dtype=np.int64)
        gathered = router.vectors_for(ids)
        expected = global_store.vectors_for(ids)
        assert gathered.dtype == expected.dtype
        assert np.array_equal(gathered, expected)

    def test_fingerprint_matches_single_node_store(self, router, base_rfs):
        assert router.store_fingerprint() == FeatureStore.build(
            base_rfs
        ).fingerprint()
        assert router.store is None
        assert router.result_cache is None

    def test_read_block_accepted_and_ignored(self, router, base_rfs):
        # The batch scheduler hands the router a memoizing reader; the
        # router must take it (interface) and may ignore it (shards own
        # their blocks) without changing the ranking.
        query = np.asarray(base_rfs.features[3], dtype=np.float64)
        node = router.root
        plain = router.localized_knn(node, query, 25)
        reader = router.memoized_block_reader("localized_knn")
        assert router.localized_knn(
            node, query, 25, read_block=reader
        ) == plain


# ----------------------------------------------------------------------
# Bit-identical rankings vs single-node (the check.sh gate)
# ----------------------------------------------------------------------
class TestShardedParity:
    @pytest.fixture(scope="class")
    def baseline_store(self, database):
        """Single-node signatures, per executor, with a feature store."""
        baselines = {}
        for executor in _EXECUTORS:
            rfs = _build_rfs(database)
            rfs.attach_store(FeatureStore.build(rfs), validate=False)
            with QueryDecompositionEngine(
                database, rfs, QDConfig(executor=executor, workers=2)
            ) as engine:
                baselines[executor] = _run_session(engine, database)
        return baselines

    @pytest.fixture(scope="class")
    def baseline_nostore(self, database):
        with QueryDecompositionEngine.build(
            database, RFS_CONFIG, QDConfig(), seed=SEED
        ) as engine:
            return _run_session(engine, database)

    @pytest.mark.parametrize("shards", _SHARD_COUNTS)
    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_sessions_bit_identical_with_stores(
        self, database, baseline_store, shards, executor
    ):
        with _sharded(
            database, shards=shards, executor=executor
        ) as engine:
            assert _run_session(engine, database) == baseline_store[
                executor
            ]

    @pytest.mark.parametrize("shards", [2, 7])
    def test_sessions_bit_identical_without_stores(
        self, database, baseline_nostore, shards
    ):
        with _sharded(database, shards=shards, store=None) as engine:
            assert _run_session(engine, database) == baseline_nostore

    @pytest.mark.parametrize("partition", ["contiguous", "roundrobin"])
    def test_partition_strategy_is_invisible(
        self, database, baseline_store, partition
    ):
        with _sharded(
            database, shards=4, partition=partition
        ) as engine:
            assert (
                _run_session(engine, database) == baseline_store["serial"]
            )

    def test_serial_fanout_matches_parallel(
        self, database, baseline_store
    ):
        with _sharded(
            database, shards=4, parallel_fanout=False
        ) as engine:
            assert (
                _run_session(engine, database) == baseline_store["serial"]
            )

    def test_cached_rerun_bit_identical(self, database, baseline_store):
        with _sharded(database, shards=4, cache=True) as engine:
            cold = _run_session(engine, database)
            warm = _run_session(engine, database)
            hits = sum(
                shard.cache.snapshot()["hits"]
                for shard in engine.shards
            )
        assert cold == baseline_store["serial"]
        assert warm == baseline_store["serial"]
        assert hits > 0

    def test_heavily_skewed_manual_partition(
        self, database, baseline_store
    ):
        # One shard holding a single leaf, the other holding the rest:
        # the most uneven split the leaf granularity allows.
        base = _build_rfs(database)
        leaves = dfs_leaves(base.root)
        buckets = (
            [leaves[0].node_id],
            [leaf.node_id for leaf in leaves[1:]],
        )
        shards = []
        for index, bucket in enumerate(buckets):
            shard_rfs = build_shard_structure(base, bucket)
            shard_rfs.attach_store(
                FeatureStore.build(shard_rfs), validate=False
            )
            shards.append(Shard(index, shard_rfs))
        router = ShardedRFS(base, shards)
        with QueryDecompositionEngine(
            database, router, QDConfig()
        ) as engine:
            assert (
                _run_session(engine, database) == baseline_store["serial"]
            )
        router.close()

    def test_tie_heavy_distances_node_sweep(self):
        # Massively duplicated rows force exact distance ties, so the
        # gather's (distance, id) ordering is the only thing separating
        # candidates — across shards it must reproduce top_pairs.
        rng = np.random.default_rng(5)
        features = np.repeat(
            rng.normal(size=(30, 8)), 20, axis=0
        )  # 600 rows, each vector x20
        config = RFSConfig(
            node_max_entries=40, node_min_entries=16, leaf_subclusters=3
        )
        single = RFSStructure.build(features, config, seed=3)
        single.attach_store(FeatureStore.build(single), validate=False)
        base = RFSStructure.build(features, config, seed=3)
        leaves = dfs_leaves(base.root)
        shards = []
        assignment = partition_leaves(leaves, 5, "roundrobin")
        for index, bucket in enumerate(assignment.shards):
            shard_rfs = build_shard_structure(base, bucket)
            shard_rfs.attach_store(
                FeatureStore.build(shard_rfs), validate=False
            )
            shards.append(Shard(index, shard_rfs))
        router = ShardedRFS(base, shards, assignment=assignment)
        queries = features[rng.integers(0, 600, size=3)]
        for node in single.iter_nodes():
            routed = router.get_node(node.node_id)
            for k in (1, 7, 50):
                for query in queries:
                    assert single.localized_knn(
                        node, query, k
                    ) == router.localized_knn(routed, query, k)
        router.close()

    def test_batch_scheduler_bit_identical(self, database):
        def marks(label):
            return tuple(
                int(i)
                for i in np.flatnonzero(database.labels == label)[:6]
            )

        queries = [
            BatchQuery(marked_ids=marks(3), k=40),
            BatchQuery(marked_ids=marks(5), k=25),
            BatchQuery(marked_ids=marks(3), k=40),  # coalesces with #0
        ]
        single = _build_rfs(database)
        single.attach_store(FeatureStore.build(single), validate=False)
        with QueryDecompositionEngine(
            database, single, QDConfig()
        ) as engine:
            baseline = [
                _signature(r)
                for r in engine.run_batch(queries, rounds_used=1)
            ]
        with _sharded(
            database, shards=4, executor="thread", cache=True
        ) as engine:
            result = [
                _signature(r)
                for r in engine.run_batch(queries, rounds_used=1)
            ]
        assert result == baseline

    def test_resume_on_router_with_different_shard_count(self, database):
        """A session checkpointed under a 2-shard router finishes
        bit-identically under a 7-shard router (and vice versa)."""
        from repro.sessionstore import InMemorySessionStore

        mark = _mark_fn(database)
        k, seed = 60, 17

        # Never-suspended single-node reference.
        rfs = _build_rfs(database)
        rfs.attach_store(FeatureStore.build(rfs), validate=False)
        with QueryDecompositionEngine(
            database, rfs, QDConfig()
        ) as engine:
            session = engine.new_session(seed=seed)
            for _ in range(2):
                session.submit(mark(session.display(screens=2)))
            expected = _signature(session.finalize(k))

        for first, second in ((2, 7), (7, 2)):
            store = InMemorySessionStore()
            with _sharded(database, shards=first) as engine_a:
                engine_a.attach_session_store(store)
                sid = engine_a.open_session(seed=seed).session_id
                session = engine_a.resume_session(sid)
                session.submit(mark(session.display(screens=2)))
            with _sharded(database, shards=second) as engine_b:
                engine_b.attach_session_store(store)
                session = engine_b.resume_session(sid)
                session.submit(mark(session.display(screens=2)))
                assert _signature(session.finalize(k)) == expected


# ----------------------------------------------------------------------
# Engine lifecycle
# ----------------------------------------------------------------------
class TestShardedEngine:
    def test_build_validation(self, database):
        with pytest.raises(ConfigurationError):
            ShardedEngine.build(
                database, RFS_CONFIG, shards=2, store="memmap", seed=SEED
            )
        with pytest.raises(ConfigurationError):
            ShardedEngine.build(
                database, RFS_CONFIG, shards=0, seed=SEED
            )

    def test_shard_accounting(self, database):
        with _sharded(database, shards=3) as engine:
            assert engine.n_shards == 3
            assert (
                sum(shard.n_items for shard in engine.shards) == N_IMAGES
            )
            leaves = sum(shard.n_leaves for shard in engine.shards)
            assert leaves == len(dfs_leaves(engine.sharded_rfs.root))
            version = engine.sharded_rfs.structure_version
            assert all(
                shard.rfs.structure_version == version
                for shard in engine.shards
            )

    def test_close_is_idempotent(self, database):
        engine = _sharded(database, shards=2)
        _run_session(engine, database)
        engine.close()
        engine.close()

    def test_shard_cache_hits_counted(self, database):
        with _sharded(database, shards=2, cache=True) as engine:
            _run_session(engine, database)
            _run_session(engine, database)
            stats = [
                shard.cache.snapshot() for shard in engine.shards
            ]
        assert sum(s["inserts"] for s in stats) > 0
        assert sum(s["hits"] for s in stats) > 0
