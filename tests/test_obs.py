"""Observability layer: tracing, metrics, exporters, summaries.

Covers the obs contract end to end: span nesting and timing, the
zero-overhead no-op defaults, JSONL round-trips through
``repro.obs.summarize``, Prometheus text exposition, and — on a real
scripted session — that tracing changes nothing about the rankings and
that the no-op instrumentation costs well under 5 % of a session.
"""

import json
import re
import time

import numpy as np
import pytest

from repro import get_query, obs
from repro.eval import SimulatedUser
from repro.obs.metrics import (
    BUCKET_BOUNDS,
    NULL_METRICS,
    RESERVOIR_CAP,
    Histogram,
    get_metrics,
    instrument_key,
)
from repro.obs.trace import _NULL_SPAN, NULL_TRACER, get_tracer


class TestSpanNesting:
    def test_spans_nest_and_time(self):
        tracer = obs.Tracer()
        with tracer.span("outer", k=10) as outer:
            time.sleep(0.002)
            with tracer.span("inner") as inner:
                time.sleep(0.002)
                inner.set(rows=3)
        assert tracer.spans == [outer]
        assert outer.children == [inner]
        assert inner.children == []
        assert outer.attributes == {"k": 10}
        assert inner.attributes == {"rows": 3}
        assert inner.duration > 0.0
        assert outer.duration >= inner.duration
        assert outer.start > 0.0

    def test_siblings_attach_in_completion_order(self):
        tracer = obs.Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        (root,) = tracer.spans
        assert [c.name for c in root.children] == ["a", "b"]

    def test_current_tracks_innermost_open_span(self):
        tracer = obs.Tracer()
        assert tracer.current is None
        with tracer.span("outer") as outer:
            assert tracer.current is outer
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None

    def test_events_are_zero_duration_children(self):
        tracer = obs.Tracer()
        with tracer.span("round") as span:
            span.event("subquery_split", parent=1, child=2)
            tracer.event("boundary_expansion", levels=1)
        (root,) = tracer.spans
        names = [c.name for c in root.children]
        assert names == ["subquery_split", "boundary_expansion"]
        for child in root.children:
            assert child.duration == 0.0
            assert child.start > 0.0

    def test_event_without_open_span_becomes_root(self):
        tracer = obs.Tracer()
        tracer.event("orphan", x=1)
        assert [s.name for s in tracer.spans] == ["orphan"]

    def test_to_dict_round_trips_structure(self):
        tracer = obs.Tracer()
        with tracer.span("session", k=5) as root:
            with tracer.span("round", round=1):
                pass
        d = root.to_dict()
        assert d["name"] == "session"
        assert d["attributes"] == {"k": 5}
        assert [c["name"] for c in d["children"]] == ["round"]

    def test_use_tracer_installs_and_restores(self):
        tracer = obs.Tracer()
        assert get_tracer() is NULL_TRACER
        with obs.use_tracer(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_tracer_none_restores_noop(self):
        previous = obs.set_tracer(obs.Tracer())
        assert previous is NULL_TRACER
        obs.set_tracer(None)
        assert get_tracer() is NULL_TRACER


class TestNoOpDefaults:
    def test_null_tracer_returns_shared_span(self):
        span = NULL_TRACER.span("session", k=100)
        assert span is _NULL_SPAN
        assert NULL_TRACER.event("x") is _NULL_SPAN
        with span as entered:
            assert entered is span
            assert span.set(a=1) is span
            assert span.event("y") is span
        assert NULL_TRACER.spans == []
        assert not NULL_TRACER.enabled

    def test_null_metrics_record_nothing(self):
        counter = NULL_METRICS.counter("qd_sessions_total")
        counter.inc(5)
        assert counter.value == 0.0
        hist = NULL_METRICS.histogram("qd_session_rounds")
        hist.observe(3)
        assert hist.count == 0
        assert hist.percentile(95) == 0.0
        NULL_METRICS.gauge("g").set(7)
        assert not NULL_METRICS.enabled

    def test_untraced_session_emits_nothing(self, engine):
        assert get_tracer() is NULL_TRACER
        assert get_metrics() is NULL_METRICS
        user = SimulatedUser(engine.database, get_query("rose"), seed=3)
        engine.run_scripted(user.mark, k=20, seed=3)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.span("x").children == []

    def test_noop_overhead_under_5_percent(self, engine):
        """Estimated total no-op instrumentation cost << session cost.

        A direct wall-clock A/B between traced and untraced runs is too
        flaky for CI, so bound the overhead analytically: count the
        spans/events a traced session emits, microbenchmark the per-call
        cost of the no-op path, and compare the product against the
        measured untraced session duration.
        """
        db = engine.database
        query = get_query("rose")

        tracer = obs.Tracer()
        with obs.use_tracer(tracer):
            user = SimulatedUser(db, query, seed=5)
            engine.run_scripted(user.mark, k=20, seed=5)
        n_calls = sum(
            1 for _ in obs.iter_spans(tracer.to_dicts())
        )
        assert n_calls > 0

        samples = []
        for _ in range(5):
            t0 = time.perf_counter()
            user = SimulatedUser(db, query, seed=5)
            engine.run_scripted(user.mark, k=20, seed=5)
            samples.append(time.perf_counter() - t0)
        session_s = sorted(samples)[len(samples) // 2]

        reps = 50_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with NULL_TRACER.span("round", round=1, phase="iteration") as s:
                s.set(shown=8, marked=2)
        per_call_s = (time.perf_counter() - t0) / reps

        # 2x margin on the span count covers the metrics sites, whose
        # no-op calls are cheaper than a full span with-block.
        overhead_s = per_call_s * n_calls * 2
        assert overhead_s < 0.05 * session_s

    def test_tracing_does_not_change_rankings(self, engine):
        db = engine.database
        query = get_query("bird")

        user = SimulatedUser(db, query, seed=11)
        plain = engine.run_scripted(user.mark, k=40, seed=11)

        tracer = obs.Tracer()
        registry = obs.MetricsRegistry()
        with obs.use_tracer(tracer), obs.use_metrics(registry):
            user = SimulatedUser(db, query, seed=11)
            traced = engine.run_scripted(user.mark, k=40, seed=11)

        assert traced.flatten() == plain.flatten()
        assert [g.items.ids() for g in traced.groups] == [
            g.items.ids() for g in plain.groups
        ]


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = obs.MetricsRegistry()
        counter = registry.counter("c", "help text")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert registry.counter("c") is counter  # lazy get-or-create

        gauge = registry.gauge("g")
        gauge.set(4)
        gauge.inc(-1)
        assert gauge.value == 3.0

        hist = registry.histogram("h")
        for v in (1, 2, 3, 4):
            hist.observe(v)
        assert hist.count == 4
        assert hist.sum == 10.0
        assert hist.mean() == 2.5
        assert hist.percentile(0) == 1.0
        assert hist.percentile(100) == 4.0

    def test_counter_rejects_negative_increment(self):
        counter = obs.MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="negative"):
            counter.inc(-1)

    def test_snapshot_flattens_all_instruments(self):
        registry = obs.MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(5)
        snap = registry.snapshot()
        assert snap["c"] == 2.0
        assert snap["g"] == 7.0
        assert snap["h_count"] == 1.0
        assert snap["h_sum"] == 5.0
        assert snap["h_p95"] == 5.0

    def test_use_metrics_installs_and_restores(self):
        registry = obs.MetricsRegistry()
        assert get_metrics() is NULL_METRICS
        with obs.use_metrics(registry):
            assert get_metrics() is registry
        assert get_metrics() is NULL_METRICS


@pytest.fixture(scope="module")
def traced_session(engine):
    """One traced + metered scripted session over the shared engine."""
    tracer = obs.Tracer()
    registry = obs.MetricsRegistry()
    with obs.use_tracer(tracer), obs.use_metrics(registry):
        user = SimulatedUser(engine.database, get_query("rose"), seed=7)
        result = engine.run_scripted(user.mark, k=30, seed=7)
    return tracer, registry, result


class TestTracedSession:
    def test_session_span_shape(self, traced_session):
        tracer, _, result = traced_session
        assert len(tracer.spans) == 1
        root = tracer.spans[0]
        assert root.name == "session"
        rounds = [c for c in root.children if c.name == "round"]
        assert len(rounds) == result.rounds_used
        assert rounds[0].attributes["phase"] == "initial"
        assert all(
            r.attributes["phase"] == "iteration" for r in rounds[1:]
        )
        finals = [c for c in root.children if c.name == "final_round"]
        assert len(finals) == 1
        assert root.attributes["disk_physical_reads"] >= 0
        assert (
            root.attributes["disk_logical_reads"]
            >= root.attributes["disk_physical_reads"]
        )

    def test_final_round_contains_merge_decisions(self, traced_session):
        tracer, _, result = traced_session
        summary = obs.summarize(tracer)
        assert summary.n_sessions == 1
        assert summary.n_rounds == result.rounds_used
        assert summary.n_localized_knn >= result.n_groups
        assert summary.n_merge_decisions >= result.n_groups
        assert summary.rounds_per_session == [result.rounds_used]
        assert summary.subqueries_final == [result.n_groups]

    def test_phase_durations_match_rounds(self, traced_session):
        tracer, _, result = traced_session
        phases = obs.phase_durations(tracer)
        assert len(phases["initial"]) == 1
        assert len(phases["iteration"]) == result.rounds_used - 1
        assert len(phases["final_knn"]) == 1
        assert all(d >= 0.0 for v in phases.values() for d in v)

    def test_session_metrics_recorded(self, traced_session):
        _, registry, result = traced_session
        sessions_key = 'qd_sessions_total{executor="serial"}'
        assert registry.counters[sessions_key].value == 1.0
        assert (
            registry.counters["qd_feedback_rounds_total"].value
            == result.rounds_used
        )
        assert registry.counters["qd_distance_computations"].value > 0
        rounds_hist = registry.histograms["qd_session_rounds"]
        assert rounds_hist.count == 1
        assert rounds_hist.sum == result.rounds_used
        shown = registry.histograms["qd_representatives_shown"]
        assert shown.count == result.rounds_used


class TestExporters:
    def test_jsonl_round_trips_through_summarize(
        self, traced_session, tmp_path
    ):
        tracer, _, _ = traced_session
        path = tmp_path / "trace.jsonl"
        n_lines = obs.write_jsonl_trace(tracer, path)
        assert n_lines == sum(
            1 for _ in obs.iter_spans(tracer.to_dicts())
        )
        assert n_lines == len(path.read_text().splitlines())

        loaded = obs.load_jsonl_trace(path)
        assert loaded == tracer.to_dicts()

        direct = obs.summarize(tracer)
        via_file = obs.summarize(path)
        assert via_file == direct

    def test_jsonl_lines_are_valid_json(self, traced_session, tmp_path):
        tracer, _, _ = traced_session
        path = tmp_path / "trace.jsonl"
        obs.write_jsonl_trace(tracer, path)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert {"span_id", "parent_id", "name", "start",
                    "duration", "attributes"} <= record.keys()

    def test_prometheus_text_is_parseable(self, traced_session):
        _, registry, _ = traced_session
        text = obs.prometheus_text(registry)
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
            r"(\{[^}]*\})? [-+0-9.e]+$"
        )
        n_samples = 0
        for line in text.splitlines():
            if line.startswith("#"):
                assert line.startswith(("# HELP ", "# TYPE "))
                continue
            assert sample.match(line), line
            n_samples += 1
        assert n_samples > 0
        assert 'qd_sessions_total{executor="serial"} 1' in text
        assert 'qd_session_rounds_bucket{le="+Inf"}' in text
        assert "qd_session_rounds_sum" in text
        assert "qd_session_rounds_count" in text

    def test_console_summary_reports_spans_and_metrics(
        self, traced_session
    ):
        tracer, registry, _ = traced_session
        text = obs.console_summary(tracer, registry)
        assert "Trace summary" in text
        assert "sessions: 1" in text
        assert "localized_knn" in text
        assert "Metrics" in text
        assert "qd_distance_computations" in text

    def test_empty_trace_and_registry(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert obs.write_jsonl_trace(obs.Tracer(), path) == 0
        assert obs.load_jsonl_trace(path) == []
        assert obs.prometheus_text(obs.MetricsRegistry()) == ""
        summary = obs.summarize([])
        assert summary.n_sessions == 0

    def test_corrupt_trailing_line_skipped_with_warning(self, tmp_path):
        """The truncated tail of a crashed run must not lose the trace."""
        tracer = obs.Tracer()
        with tracer.span("session"):
            with tracer.span("round"):
                pass
        path = tmp_path / "crashed.jsonl"
        obs.write_jsonl_trace(tracer, path)
        intact = obs.load_jsonl_trace(path)
        with open(path, "a") as fh:
            fh.write('{"span_id": 99, "name": "trunc')  # crash mid-write
        with pytest.warns(RuntimeWarning, match=r"crashed\.jsonl:3"):
            loaded = obs.load_jsonl_trace(path)
        assert loaded == intact
        # Non-JSON garbage and JSON missing span_id are also skipped.
        with open(path, "a") as fh:
            fh.write('\nnot json at all\n{"parent_id": null}\n')
        with pytest.warns(RuntimeWarning):
            assert obs.load_jsonl_trace(path) == intact


class TestLabeledMetrics:
    def test_label_sets_form_distinct_children(self):
        registry = obs.MetricsRegistry()
        hit = registry.counter(
            "qd_cache_requests_total", "lookups", labels={"outcome": "hit"}
        )
        miss = registry.counter(
            "qd_cache_requests_total", labels={"outcome": "miss"}
        )
        assert hit is not miss
        hit.inc(3)
        miss.inc()
        # Same name + same labels resolves to the same child, in any
        # key order and value type.
        again = registry.counter(
            "qd_cache_requests_total", labels={"outcome": "hit"}
        )
        assert again is hit
        assert (
            registry.counters['qd_cache_requests_total{outcome="hit"}']
            .value
            == 3.0
        )

    def test_instrument_key_is_canonical(self):
        assert instrument_key("m") == "m"
        assert (
            instrument_key("m", {"b": 2, "a": "x"})
            == 'm{a="x",b="2"}'
        )

    def test_prometheus_renders_one_family_header_for_children(self):
        registry = obs.MetricsRegistry()
        registry.counter(
            "qd_phase_total", "phases", labels={"phase": "initial"}
        ).inc(1)
        registry.counter(
            "qd_phase_total", "phases", labels={"phase": "iteration"}
        ).inc(2)
        text = obs.prometheus_text(registry)
        assert text.count("# TYPE qd_phase_total counter") == 1
        assert text.count("# HELP qd_phase_total phases") == 1
        assert 'qd_phase_total{phase="initial"} 1' in text
        assert 'qd_phase_total{phase="iteration"} 2' in text

    def test_prometheus_labeled_histogram_series(self):
        registry = obs.MetricsRegistry()
        hist = registry.histogram(
            "qd_subquery_seconds", "latency", labels={"executor": "thread"}
        )
        for v in (0.001, 0.002, 0.004):
            hist.observe(v)
        text = obs.prometheus_text(registry)
        assert "# TYPE qd_subquery_seconds histogram" in text
        # Every series of the native histogram carries the child labels;
        # _bucket additionally carries le and ends at +Inf cumulative.
        assert re.search(
            r'qd_subquery_seconds_bucket\{executor="thread",'
            r'le="[^"]+"\} \d+',
            text,
        )
        assert (
            'qd_subquery_seconds_bucket{executor="thread",le="+Inf"} 3'
            in text
        )
        assert 'qd_subquery_seconds_sum{executor="thread"}' in text
        assert 'qd_subquery_seconds_count{executor="thread"} 3' in text

    def test_prometheus_escapes_label_values(self):
        registry = obs.MetricsRegistry()
        registry.counter(
            "c", labels={"path": 'a"b\\c'}
        ).inc()
        text = obs.prometheus_text(registry)
        assert 'c{path="a\\"b\\\\c"} 1' in text

    def test_labeled_payload_merges_into_matching_children(self):
        """Worker registries graft by name *and* labels, not just name."""
        worker = obs.MetricsRegistry()
        worker.counter(
            "qd_subqueries_total", "subqueries",
            labels={"executor": "process"},
        ).inc(4)
        worker.counter("qd_distance_computations").inc(100)
        worker.gauge("g", labels={"w": "1"}).set(7)
        worker.histogram(
            "qd_subquery_seconds", labels={"executor": "process"}
        ).observe(0.25)

        parent = obs.MetricsRegistry()
        parent.counter(
            "qd_subqueries_total", labels={"executor": "process"}
        ).inc(1)
        parent.merge_payload(worker.to_payload())
        parent.merge_payload(worker.to_payload())  # two workers

        key = 'qd_subqueries_total{executor="process"}'
        assert parent.counters[key].value == 9.0
        assert parent.counters[key].labels == {"executor": "process"}
        assert (
            parent.counters["qd_distance_computations"].value == 200.0
        )
        assert parent.gauges['g{w="1"}'].value == 7.0
        merged = parent.histograms[
            'qd_subquery_seconds{executor="process"}'
        ]
        assert merged.count == 2
        assert merged.sum == 0.5
        assert merged.percentile(50) == 0.25
        # The merged child renders under its labels, and snapshot keys
        # carry them too.
        text = obs.prometheus_text(parent)
        assert (
            'qd_subquery_seconds_count{executor="process"} 2' in text
        )
        snap = parent.snapshot()
        assert snap[key] == 9.0


class TestStreamingHistogram:
    def test_exact_percentiles_below_reservoir_cap(self):
        hist = Histogram("h")
        values = list(range(1, 101))
        for v in values:
            hist.observe(v)
        assert hist.count == 100
        assert hist.samples == [float(v) for v in values]
        for q in (0, 25, 50, 90, 95, 100):
            assert hist.percentile(q) == float(
                np.percentile(values, q)
            )

    def test_memory_bounded_and_estimator_above_cap(self):
        hist = Histogram("h", cap=64)
        rng = np.random.default_rng(7)
        values = rng.lognormal(mean=-5.0, sigma=1.0, size=5000)
        for v in values:
            hist.observe(float(v))
        assert hist.count == 5000
        assert len(hist.samples) == 64  # bounded, not the full stream
        # The bucket estimator is within one log-spaced bucket width
        # (10^(1/5) ~ 58%) of the true percentile, clamped to min/max.
        for q in (50, 95, 99):
            exact = float(np.percentile(values, q))
            est = hist.percentile(q)
            assert values.min() <= est <= values.max()
            assert exact / 1.6 <= est <= exact * 1.6
        assert hist.percentile(0) >= float(values.min())
        assert hist.percentile(100) == pytest.approx(
            float(values.max())
        )

    def test_reservoir_is_deterministic_per_key(self):
        stream = np.random.default_rng(3).normal(size=500)
        a = Histogram("h", cap=32)
        b = Histogram("h", cap=32)
        other = Histogram("h2", cap=32)
        for v in stream:
            a.observe(float(v))
            b.observe(float(v))
            other.observe(float(v))
        assert a.samples == b.samples  # same key, same stream
        assert a.samples != other.samples  # key seeds the RNG

    def test_default_cap_matches_module_constant(self):
        assert Histogram("h").cap == RESERVOIR_CAP

    def test_bucket_counts_are_cumulative_and_end_at_inf(self):
        hist = Histogram("h")
        for v in (0.5, 0.5, 2.0, 1e12):  # 1e12 -> overflow bucket
            hist.observe(v)
        pairs = hist.bucket_counts()
        counts = [c for _, c in pairs]
        assert counts == sorted(counts)
        assert counts[-1] == 4
        assert pairs[-1][0] == float("inf")
        bounds = [b for b, _ in pairs[:-1]]
        assert all(b in BUCKET_BOUNDS for b in bounds)

    def test_extremes_land_in_edge_buckets(self):
        hist = Histogram("h")
        for v in (-1.0, 0.0, 1e300):
            hist.observe(v)
        assert hist.count == 3
        pairs = hist.bucket_counts()
        assert pairs[0] == (BUCKET_BOUNDS[0], 2)  # <= smallest bound
        assert pairs[-1] == (float("inf"), 3)

    def test_merge_state_is_exact_for_buckets_count_sum(self):
        a = Histogram("h")
        b = Histogram("h")
        whole = Histogram("h")
        stream = [0.01 * (i + 1) for i in range(40)]
        for v in stream[:20]:
            a.observe(v)
            whole.observe(v)
        for v in stream[20:]:
            b.observe(v)
            whole.observe(v)
        a.merge_state(b.state())
        assert a.count == whole.count
        assert a.sum == pytest.approx(whole.sum)
        assert a.bucket_counts() == whole.bucket_counts()
        # Under the cap both reservoirs are complete, so the merged
        # percentiles are exact as well.
        assert a.percentile(95) == whole.percentile(95)
