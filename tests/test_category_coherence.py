"""Cluster-coherence tests for the synthetic dataset.

These guard the property the whole reproduction stands on: every named
category forms a coherent feature-space cluster, query subconcepts are
separated (except the deliberately close airplane/mountain pairs), and
distractors fill the space between.
"""

import numpy as np
import pytest

from repro.datasets.concepts import NAMED_CATEGORY_ORDER
from repro.datasets.queryset import TABLE1_QUERIES


def _centroid(db, name):
    return db.features[db.ids_of_category(name)].mean(axis=0)


def _spread(db, name):
    ids = db.ids_of_category(name)
    feats = db.features[ids]
    centre = feats.mean(axis=0)
    return float(
        np.sqrt(np.mean(np.sum((feats - centre) ** 2, axis=1)))
    )


class TestCategoryCoherence:
    @pytest.mark.parametrize("name", NAMED_CATEGORY_ORDER)
    def test_category_tighter_than_global(self, rendered_db, name):
        """Each category's spread is well below the global spread."""
        global_spread = float(
            np.sqrt(
                np.mean(np.sum(rendered_db.features**2, axis=1))
            )
        )
        assert _spread(rendered_db, name) < 0.85 * global_spread

    @pytest.mark.parametrize("name", NAMED_CATEGORY_ORDER)
    def test_members_closer_to_own_centroid(self, rendered_db, name):
        """Most images sit nearer their own centroid than the global
        centre — the clusters are real, not labels on noise."""
        ids = rendered_db.ids_of_category(name)
        feats = rendered_db.features[ids]
        own = feats.mean(axis=0)
        d_own = np.linalg.norm(feats - own, axis=1)
        d_global = np.linalg.norm(feats, axis=1)  # global centroid ~ 0
        assert (d_own < d_global).mean() > 0.7


class TestSubconceptSeparation:
    #: Queries whose subconcepts stay feature-close by design (Table 1:
    #: MV reaches GTIR 1 on them).
    CLOSE_QUERIES = {"airplane", "mountain"}

    @pytest.mark.parametrize(
        "query", [q for q in TABLE1_QUERIES], ids=lambda q: q.name
    )
    def test_scattered_subconcepts_are_separated(self, rendered_db,
                                                 query):
        if query.n_subconcepts < 2:
            return
        # A subconcept may itself be a union of clusters (the four
        # sedan poses), so measure at the constituent-category level:
        # gap = closest centroid pair across different subconcepts,
        # spread = widest single category.
        per_sub_centroids = []
        spreads = []
        for sub in query.subconcepts:
            cats = sorted(sub.categories)
            per_sub_centroids.append(
                [_centroid(rendered_db, c) for c in cats]
            )
            spreads.extend(_spread(rendered_db, c) for c in cats)
        min_gap = min(
            float(np.linalg.norm(a - b))
            for i, group_a in enumerate(per_sub_centroids)
            for group_b in per_sub_centroids[i + 1:]
            for a in group_a
            for b in group_b
        )
        ratio = min_gap / max(spreads)
        if query.name in self.CLOSE_QUERIES:
            assert ratio < 1.5, "deliberately close pair drifted apart"
        else:
            assert ratio > 0.8, (
                f"{query.name} subconcepts no longer separated"
            )

    def test_sedan_poses_mutually_separated(self, rendered_db):
        """Figure 1's requirement, at the raw feature level."""
        poses = ("sedan_side", "sedan_front", "sedan_back",
                 "sedan_angle")
        for i, a in enumerate(poses):
            for b in poses[i + 1:]:
                gap = float(np.linalg.norm(
                    _centroid(rendered_db, a) - _centroid(rendered_db, b)
                ))
                spread = max(
                    _spread(rendered_db, a), _spread(rendered_db, b)
                )
                assert gap > spread, (a, b)


class TestDistractors:
    def test_distractors_do_not_collapse(self, rendered_db):
        """Distractor categories spread across feature space rather than
        piling onto one point (they play the scattered 'triangles' of
        Figure 1)."""
        distractor_labels = [
            i
            for i, name in enumerate(rendered_db.category_names)
            if name.startswith("distractor_")
        ]
        assert len(distractor_labels) >= 5
        centroids = np.vstack(
            [
                rendered_db.features[
                    rendered_db.ids_of_category(
                        rendered_db.category_names[label]
                    )
                ].mean(axis=0)
                for label in distractor_labels
            ]
        )
        pairwise = np.linalg.norm(
            centroids[:, None, :] - centroids[None, :, :], axis=-1
        )
        off_diag = pairwise[~np.eye(len(centroids), dtype=bool)]
        assert off_diag.min() > 0.5

    def test_some_distractor_near_named_clusters(self, rendered_db):
        """At least some distractors sit near named clusters — enlarged
        k-NN neighbourhoods must have junk to pick up (§1.1)."""
        named_centroids = np.vstack(
            [_centroid(rendered_db, n) for n in NAMED_CATEGORY_ORDER]
        )
        distractor_ids = [
            int(i)
            for i in range(rendered_db.size)
            if rendered_db.category_of(i).startswith("distractor_")
        ]
        feats = rendered_db.features[distractor_ids[:300]]
        d = np.min(
            np.linalg.norm(
                feats[:, None, :] - named_centroids[None, :, :], axis=-1
            ),
            axis=1,
        )
        # A meaningful share of distractors within typical spread range.
        assert (d < 5.0).mean() > 0.2
