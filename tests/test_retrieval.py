"""Tests for retrieval primitives: distances, multipoint, top-k, merge."""

import numpy as np
import pytest

from repro.errors import QueryError
from repro.retrieval.distance import (
    euclidean,
    euclidean_many,
    inverse_variance_weights,
    quadratic_form_distance,
    weighted_euclidean,
)
from repro.retrieval.multipoint import MultipointQuery
from repro.retrieval.topk import (
    RankedList,
    merge_ranked_lists,
    proportional_allocation,
    top_k,
)


class TestDistances:
    def test_euclidean_basic(self):
        assert euclidean(np.array([0.0, 0.0]),
                         np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_euclidean_many_matches_loop(self, rng):
        pts = rng.normal(size=(20, 4))
        q = rng.normal(size=4)
        batch = euclidean_many(pts, q)
        for i in range(20):
            assert batch[i] == pytest.approx(euclidean(pts[i], q))

    def test_weighted_reduces_to_euclidean_with_unit_weights(self, rng):
        pts = rng.normal(size=(10, 3))
        q = rng.normal(size=3)
        assert np.allclose(
            weighted_euclidean(pts, q, np.ones(3)),
            euclidean_many(pts, q),
        )

    def test_weighted_zero_weight_ignores_dimension(self):
        pts = np.array([[0.0, 100.0]])
        q = np.array([0.0, 0.0])
        w = np.array([1.0, 0.0])
        assert weighted_euclidean(pts, q, w)[0] == pytest.approx(0.0)

    def test_weighted_negative_weight_rejected(self, rng):
        with pytest.raises(QueryError):
            weighted_euclidean(
                rng.normal(size=(3, 2)), np.zeros(2),
                np.array([1.0, -1.0]),
            )

    def test_quadratic_identity_matches_euclidean(self, rng):
        pts = rng.normal(size=(10, 3))
        q = rng.normal(size=3)
        assert np.allclose(
            quadratic_form_distance(pts, q, np.eye(3)),
            euclidean_many(pts, q),
        )

    def test_quadratic_asymmetric_rejected(self, rng):
        bad = np.array([[1.0, 1.0], [0.0, 1.0]])
        with pytest.raises(QueryError):
            quadratic_form_distance(
                rng.normal(size=(3, 2)), np.zeros(2), bad
            )

    def test_quadratic_wrong_shape_rejected(self, rng):
        with pytest.raises(QueryError):
            quadratic_form_distance(
                rng.normal(size=(3, 2)), np.zeros(2), np.eye(3)
            )

    def test_inverse_variance_weights_favour_tight_dims(self, rng):
        tight = rng.normal(0, 0.01, size=50)
        loose = rng.normal(0, 10.0, size=50)
        weights = inverse_variance_weights(
            np.column_stack([tight, loose])
        )
        assert weights[0] > weights[1]

    def test_inverse_variance_weights_normalised(self, rng):
        relevant = rng.normal(size=(30, 5))
        weights = inverse_variance_weights(relevant)
        assert weights.sum() == pytest.approx(5.0)


class TestMultipointQuery:
    def test_single_point_reduces_to_euclidean(self, rng):
        p = rng.normal(size=3)
        mq = MultipointQuery(p[None, :])
        cand = rng.normal(size=(5, 3))
        assert np.allclose(mq.distances(cand), euclidean_many(cand, p))

    def test_uniform_weights_average_distances(self):
        mq = MultipointQuery(np.array([[0.0, 0.0], [2.0, 0.0]]))
        got = mq.distances(np.array([[0.0, 0.0]]))[0]
        assert got == pytest.approx(1.0)  # (0 + 2) / 2

    def test_explicit_weights(self):
        mq = MultipointQuery(
            np.array([[0.0, 0.0], [2.0, 0.0]]), weights=[3.0, 1.0]
        )
        got = mq.distances(np.array([[0.0, 0.0]]))[0]
        assert got == pytest.approx(0.25 * 2.0)

    def test_weights_normalised(self):
        mq = MultipointQuery(np.zeros((2, 2)), weights=[2.0, 2.0])
        assert np.allclose(mq.weights, [0.5, 0.5])

    def test_centroid_weighted(self):
        mq = MultipointQuery(
            np.array([[0.0, 0.0], [4.0, 0.0]]), weights=[1.0, 3.0]
        )
        assert np.allclose(mq.centroid(), [3.0, 0.0])

    def test_distance_one(self, rng):
        pts = rng.normal(size=(3, 4))
        mq = MultipointQuery(pts)
        cand = rng.normal(size=4)
        assert mq.distance_one(cand) == pytest.approx(
            mq.distances(cand[None, :])[0]
        )

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            MultipointQuery(np.empty((0, 3)))

    def test_bad_weights_rejected(self):
        with pytest.raises(QueryError):
            MultipointQuery(np.zeros((2, 2)), weights=[1.0])
        with pytest.raises(QueryError):
            MultipointQuery(np.zeros((2, 2)), weights=[-1.0, 2.0])

    def test_from_relevant_clusters(self, rng):
        relevant = np.vstack([
            rng.normal(0, 0.1, size=(6, 2)),
            rng.normal(10, 0.1, size=(2, 2)),
        ])
        labels = np.array([0] * 6 + [1] * 2)
        centroids = np.array([[0.0, 0.0], [10.0, 10.0]])
        mq = MultipointQuery.from_relevant_clusters(
            relevant, labels, centroids
        )
        assert mq.size == 2
        # Bigger cluster gets proportionally larger weight.
        assert mq.weights[0] == pytest.approx(0.75)

    def test_from_relevant_clusters_skips_empty(self, rng):
        relevant = rng.normal(size=(4, 2))
        labels = np.zeros(4, dtype=int)
        centroids = np.array([[0.0, 0.0], [50.0, 50.0]])
        mq = MultipointQuery.from_relevant_clusters(
            relevant, labels, centroids
        )
        assert mq.size == 1


class TestTopK:
    def test_returns_lowest_scores(self):
        scores = np.array([5.0, 1.0, 3.0, 2.0])
        rl = top_k(scores, [10, 11, 12, 13], 2)
        assert rl.ids() == [11, 13]

    def test_k_larger_than_n(self):
        rl = top_k(np.array([1.0, 2.0]), [0, 1], 10)
        assert len(rl) == 2

    def test_mismatched_ids_rejected(self):
        with pytest.raises(QueryError):
            top_k(np.array([1.0]), [0, 1], 1)

    def test_invalid_k_rejected(self):
        with pytest.raises(QueryError):
            top_k(np.array([1.0]), [0], 0)

    def test_tie_broken_by_id(self):
        rl = top_k(np.array([1.0, 1.0, 1.0]), [5, 3, 4], 3)
        assert rl.ids() == [3, 4, 5]


class TestRankedList:
    def test_from_pairs_sorts(self):
        rl = RankedList.from_pairs([(0.9, 1), (0.1, 2), (0.5, 3)])
        assert rl.ids() == [2, 3, 1]

    def test_truncate(self):
        rl = RankedList.from_pairs([(0.1, 1), (0.2, 2), (0.3, 3)])
        assert rl.truncate(2).ids() == [1, 2]

    def test_total_score(self):
        rl = RankedList.from_pairs([(0.1, 1), (0.2, 2)])
        assert rl.total_score() == pytest.approx(0.3)

    def test_len_and_iter(self):
        rl = RankedList.from_pairs([(0.1, 1)])
        assert len(rl) == 1
        assert [it.item_id for it in rl] == [1]


class TestMergeRankedLists:
    def test_merge_takes_global_best(self):
        a = RankedList.from_pairs([(0.1, 1), (0.5, 2)])
        b = RankedList.from_pairs([(0.2, 3), (0.3, 4)])
        merged = merge_ranked_lists([a, b], k=3)
        assert merged.ids() == [1, 3, 4]

    def test_dedupe_keeps_best_score(self):
        a = RankedList.from_pairs([(0.5, 1)])
        b = RankedList.from_pairs([(0.1, 1)])
        merged = merge_ranked_lists([a, b], k=1)
        assert merged.items[0].score == pytest.approx(0.1)

    def test_invalid_k(self):
        with pytest.raises(QueryError):
            merge_ranked_lists([], k=0)

    def test_empty_input(self):
        assert len(merge_ranked_lists([], k=5)) == 0


class TestProportionalAllocation:
    def test_exact_split(self):
        assert proportional_allocation([1, 1], 10) == [5, 5]

    def test_proportional(self):
        assert proportional_allocation([3, 1], 8) == [6, 2]

    def test_total_preserved(self, rng):
        for _ in range(50):
            sizes = rng.integers(0, 10, size=5).tolist()
            total = int(rng.integers(0, 30))
            out = proportional_allocation(sizes, total)
            if sum(1 for s in sizes if s > 0) <= total:
                assert sum(out) == total
            assert all(v >= 0 for v in out)

    def test_nonempty_groups_get_at_least_one(self):
        out = proportional_allocation([100, 1], 10)
        assert out[1] >= 1

    def test_zero_weight_groups_get_nothing(self):
        out = proportional_allocation([5, 0, 5], 10)
        assert out[1] == 0

    def test_all_zero_weights_spread_evenly(self):
        out = proportional_allocation([0, 0, 0], 6)
        assert out == [2, 2, 2]

    def test_zero_total(self):
        assert proportional_allocation([3, 4], 0) == [0, 0]

    def test_negative_total_rejected(self):
        with pytest.raises(QueryError):
            proportional_allocation([1], -1)

    def test_empty_groups(self):
        assert proportional_allocation([], 5) == []

    def test_paper_merge_rule(self):
        """§3.4: result count proportional to marked query images."""
        out = proportional_allocation([4, 2, 2], 24)
        assert out == [12, 6, 6]
