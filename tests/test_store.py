"""Tests for the leaf-contiguous feature store (repro.store).

Covers the build invariants (permutation maps, per-node contiguity),
the save -> memmap/inmem load roundtrip, the zero-copy pickling
contract, the batched kernels against naive references, the store-backed
``localized_knn`` fast path, and — the acceptance property — bit-identical
rankings between the ``inmem`` and ``memmap`` backings under the serial,
thread, and process executors.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.config import QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.errors import (
    ConfigurationError,
    DatasetError,
    NodeNotFoundError,
)
from repro.exec import ProcessSubqueryExecutor
from repro.index.incremental import IncrementalRFS
from repro.index.rfs import RFSStructure
from repro.index.serialize import load_rfs, save_rfs
from repro.retrieval.distance import euclidean_many, weighted_euclidean
from repro.retrieval.multipoint import MultipointQuery
from repro.retrieval.topk import top_pairs
from repro.store import (
    FeatureStore,
    multipoint_distances,
    open_store,
    pairwise_distances,
    point_distances,
    weighted_point_distances,
)

N_IMAGES = 900
SEED = 2006


@pytest.fixture(scope="module")
def built():
    """A small synthetic database with its RFS structure."""
    from repro.datasets.build import build_synthetic_database

    database = build_synthetic_database(
        N_IMAGES, n_categories=30, seed=SEED
    )
    rfs = RFSStructure.build(
        database.features,
        RFSConfig(
            node_max_entries=60, node_min_entries=30, leaf_subclusters=4
        ),
        seed=SEED,
    )
    return database, rfs


@pytest.fixture()
def saved_store(built, tmp_path):
    """A store built from the shared structure, saved to a tmp dir."""
    _, rfs = built
    store = FeatureStore.build(rfs)
    directory = tmp_path / "store"
    store.save(directory)
    return rfs, store, directory


# ----------------------------------------------------------------------
# Build invariants
# ----------------------------------------------------------------------
class TestBuild:
    def test_permutation_maps_are_inverse(self, built):
        _, rfs = built
        store = FeatureStore.build(rfs)
        n = store.n_rows
        assert n == rfs.root.size
        assert np.array_equal(
            store.row_of_id[store.id_of_row], np.arange(n)
        )
        assert np.array_equal(
            store.id_of_row[store.row_of_id], np.arange(n)
        )

    def test_every_node_is_contiguous(self, built):
        _, rfs = built
        store = FeatureStore.build(rfs)
        for node in rfs.iter_nodes():
            start, stop = store.span_of(node.node_id)
            assert stop - start == node.size
            assert np.array_equal(
                np.sort(store.id_of_row[start:stop]), node.item_ids
            )
        assert store.span_of(rfs.root.node_id) == (0, store.n_rows)

    def test_matrix_is_permuted_features(self, built):
        database, rfs = built
        store = FeatureStore.build(rfs, dtype="float64")
        assert np.array_equal(
            np.asarray(store.matrix), database.features[store.id_of_row]
        )

    def test_default_dtype_float32_contiguous_readonly(self, built):
        _, rfs = built
        store = FeatureStore.build(rfs)
        assert store.dtype == np.float32
        assert store.matrix.flags["C_CONTIGUOUS"]
        assert not store.matrix.flags["WRITEABLE"]

    def test_rejects_unknown_dtype(self, built):
        _, rfs = built
        with pytest.raises(ConfigurationError):
            FeatureStore.build(rfs, dtype="int16")

    def test_leaf_node_of_matches_tree_descent(self, built):
        _, rfs = built
        store = FeatureStore.build(rfs)
        for image_id in range(0, N_IMAGES, 37):
            assert (
                store.leaf_node_of(image_id)
                == rfs.leaf_of_item(image_id).node_id
            )
        with pytest.raises(NodeNotFoundError):
            store.leaf_node_of(N_IMAGES + 5)

    def test_sqnorms_cached_and_correct(self, built):
        _, rfs = built
        store = FeatureStore.build(rfs)
        expected = np.einsum(
            "ij,ij->i", store.matrix, store.matrix
        )
        assert np.allclose(store.sqnorms, expected)
        assert store.sqnorms is store.sqnorms  # cached object

    def test_database_convenience_wrapper(self, built):
        database, rfs = built
        store = database.build_feature_store(rfs)
        assert store.n_rows == database.size
        other = np.zeros_like(database.features)
        foreign = RFSStructure.build(other, RFSConfig(), seed=1)
        with pytest.raises(DatasetError):
            database.build_feature_store(foreign)


# ----------------------------------------------------------------------
# Save -> load roundtrip
# ----------------------------------------------------------------------
class TestRoundtrip:
    def test_roundtrip_memmap_bitwise(self, saved_store):
        _, store, directory = saved_store
        loaded = FeatureStore.open(directory, mode="memmap")
        assert isinstance(loaded.matrix, np.memmap)
        assert loaded.kind == "memmap"
        assert loaded.dtype == store.dtype
        assert loaded.matrix.shape == store.matrix.shape
        assert np.array_equal(
            np.asarray(loaded.matrix), np.asarray(store.matrix)
        )
        assert np.array_equal(loaded.id_of_row, store.id_of_row)
        assert np.array_equal(loaded.row_of_id, store.row_of_id)
        assert loaded.spans == store.spans

    def test_roundtrip_inmem_bitwise(self, saved_store):
        _, store, directory = saved_store
        loaded = open_store(directory, mode="inmem")
        assert loaded.kind == "inmem"
        assert np.array_equal(
            np.asarray(loaded.matrix), np.asarray(store.matrix)
        )
        assert not loaded.matrix.flags["WRITEABLE"]

    def test_roundtrip_views_are_readonly(self, saved_store):
        _, _, directory = saved_store
        loaded = FeatureStore.open(directory, mode="memmap")
        block, ids, sqnorms = loaded.node_block(
            next(iter(loaded.spans))
        )
        for arr in (block, ids, sqnorms):
            assert not arr.flags["WRITEABLE"]

    def test_roundtrip_missing_and_corrupt(self, saved_store, tmp_path):
        _, _, directory = saved_store
        with pytest.raises(DatasetError):
            FeatureStore.open(tmp_path / "nowhere")
        # Truncate the data file: byte-size validation must fire.
        data = directory / "features.bin"
        data.write_bytes(data.read_bytes()[:-8])
        with pytest.raises(DatasetError):
            FeatureStore.open(directory)

    def test_open_rejects_bad_mode(self, saved_store):
        _, _, directory = saved_store
        with pytest.raises(ConfigurationError):
            FeatureStore.open(directory, mode="mmap")

    def test_memmap_pickle_ships_path_not_bytes(self, saved_store):
        _, _, directory = saved_store
        loaded = FeatureStore.open(directory, mode="memmap")
        blob = pickle.dumps(loaded)
        # Zero-copy contract: the pickled form must be metadata-sized,
        # never the feature matrix itself.
        assert len(blob) < loaded.nbytes / 2
        clone = pickle.loads(blob)
        assert np.array_equal(
            np.asarray(clone.matrix), np.asarray(loaded.matrix)
        )

    def test_save_rfs_with_store_dir(self, built, tmp_path):
        database, rfs = built
        rfs_path = tmp_path / "rfs.npz"
        store_dir = tmp_path / "store"
        save_rfs(rfs, rfs_path, store_dir=store_dir)
        loaded = load_rfs(
            rfs_path, database.features, store_dir=store_dir
        )
        assert loaded.store is not None
        assert loaded.store.kind == "memmap"
        assert loaded.store.n_rows == rfs.root.size


# ----------------------------------------------------------------------
# Kernels and trusted fast paths
# ----------------------------------------------------------------------
class TestKernels:
    def test_pairwise_matches_naive(self):
        rng = np.random.default_rng(0)
        block = rng.normal(size=(50, 12)).astype(np.float32)
        reps = rng.normal(size=(4, 12))
        table = pairwise_distances(block, reps)
        naive = np.linalg.norm(
            block[:, None, :].astype(np.float64) - reps[None, :, :],
            axis=2,
        )
        assert table.shape == (50, 4)
        assert np.allclose(table, naive, atol=1e-4)

    def test_point_distances_with_cached_norms(self):
        rng = np.random.default_rng(1)
        block = rng.normal(size=(40, 8))
        sq = np.einsum("ij,ij->i", block, block)
        q = rng.normal(size=8)
        dists = point_distances(block, q, block_sqnorms=sq)
        assert np.allclose(
            dists, np.linalg.norm(block - q, axis=1), atol=1e-9
        )

    def test_weighted_point_distances(self):
        rng = np.random.default_rng(2)
        block = rng.normal(size=(30, 6))
        q = rng.normal(size=6)
        w = rng.uniform(0.1, 2.0, size=6)
        dists = weighted_point_distances(block, q, w)
        diff = block - q
        assert np.allclose(
            dists, np.sqrt(np.sum(w * diff * diff, axis=1)), atol=1e-9
        )

    def test_multipoint_matches_query_object(self):
        rng = np.random.default_rng(3)
        block = rng.normal(size=(25, 10))
        reps = rng.normal(size=(3, 10))
        weights = np.array([2.0, 1.0, 1.0])
        mq = MultipointQuery(reps, weights)
        fused = multipoint_distances(block, reps, weights)
        assert np.allclose(fused, mq.distances(block), atol=1e-9)
        # And the trusted entry point on the query object itself.
        assert np.allclose(
            mq.distances(block, trusted=True), mq.distances(block),
            atol=1e-9,
        )

    def test_trusted_distance_fast_paths(self):
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(20, 5))
        q = rng.normal(size=5)
        w = rng.uniform(0.5, 1.5, size=5)
        assert np.allclose(
            euclidean_many(pts, q, trusted=True), euclidean_many(pts, q)
        )
        assert np.allclose(
            weighted_euclidean(pts, q, w, trusted=True),
            weighted_euclidean(pts, q, w),
        )

    def test_top_pairs_matches_full_sort(self):
        rng = np.random.default_rng(5)
        scores = rng.integers(0, 10, size=200).astype(np.float64)
        ids = rng.permutation(200)
        expected = sorted(zip(scores.tolist(), ids.tolist()))[:25]
        assert top_pairs(scores, ids, 25) == [
            (float(s), int(i)) for s, i in expected
        ]


# ----------------------------------------------------------------------
# Batched MBR geometry
# ----------------------------------------------------------------------
class TestBatchedGeometry:
    def test_min_distance_batch_matches_scalar(self):
        from repro.index.geometry import MBR

        rng = np.random.default_rng(6)
        box = MBR(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
        points = rng.normal(scale=2.0, size=(40, 2))
        batch = box.min_distance(points)
        assert batch.shape == (40,)
        for i, point in enumerate(points):
            assert batch[i] == pytest.approx(box.min_distance(point))

    def test_center_distance_batch_matches_scalar(self):
        from repro.index.geometry import MBR

        rng = np.random.default_rng(7)
        box = MBR(np.array([-1.0, 0.0, 1.0]), np.array([0.0, 1.0, 4.0]))
        points = rng.normal(size=(10, 3))
        batch = box.center_distance(points)
        for i, point in enumerate(points):
            assert batch[i] == pytest.approx(box.center_distance(point))

    def test_stacked_min_distances_matches_per_box(self):
        from repro.index.geometry import MBR, stacked_min_distances

        rng = np.random.default_rng(8)
        boxes = []
        for _ in range(12):
            lo = rng.normal(size=4)
            boxes.append(MBR(lo, lo + rng.uniform(0.1, 1.0, size=4)))
        los = np.stack([b.lo for b in boxes])
        his = np.stack([b.hi for b in boxes])
        q = rng.normal(size=4)
        w = rng.uniform(0.2, 2.0, size=4)
        plain = stacked_min_distances(los, his, q)
        weighted = stacked_min_distances(los, his, q, w)
        for i, box in enumerate(boxes):
            assert plain[i] == pytest.approx(box.min_distance(q))
            below = np.maximum(box.lo - q, 0.0)
            above = np.maximum(q - box.hi, 0.0)
            gap = below + above
            assert weighted[i] == pytest.approx(
                float(np.sqrt(np.sum(w * gap * gap)))
            )


# ----------------------------------------------------------------------
# Store-backed localized k-NN
# ----------------------------------------------------------------------
class TestStoreScan:
    def test_attach_validates_shape(self, built):
        _, rfs = built
        store = FeatureStore.build(rfs)
        other = RFSStructure.build(
            np.random.default_rng(9).normal(size=(300, 37)),
            RFSConfig(node_max_entries=60, node_min_entries=30),
            seed=9,
        )
        with pytest.raises(ConfigurationError):
            other.attach_store(store)

    def test_store_scan_matches_legacy_ids(self, built):
        database, rfs = built
        rfs.detach_store()
        query = database.features[11]
        leaf = rfs.leaf_of_item(11)
        legacy = rfs.localized_knn(leaf, query, 30)
        rfs.attach_store(FeatureStore.build(rfs))
        try:
            fast = rfs.localized_knn(rfs.leaf_of_item(11), query, 30)
        finally:
            rfs.detach_store()
        assert [i for _, i in fast] == [i for _, i in legacy]
        assert np.allclose(
            [d for d, _ in fast], [d for d, _ in legacy], atol=1e-3
        )

    def test_store_scan_weighted_matches_legacy_ids(self, built):
        database, rfs = built
        rfs.detach_store()
        query = database.features[77]
        weights = np.linspace(0.5, 1.5, database.dims)
        leaf = rfs.leaf_of_item(77)
        legacy = rfs.localized_knn(leaf, query, 20, weights=weights)
        rfs.attach_store(FeatureStore.build(rfs))
        try:
            fast = rfs.localized_knn(
                rfs.leaf_of_item(77), query, 20, weights=weights
            )
        finally:
            rfs.detach_store()
        assert [i for _, i in fast] == [i for _, i in legacy]

    def test_store_scan_accounts_io_and_bytes(self, built):
        database, rfs = built
        store = FeatureStore.build(rfs)
        rfs.attach_store(store)
        try:
            before_reads = rfs.io.physical_reads
            before_bytes = rfs.io.bytes_read
            blocks_before = store.stats["block_reads"]
            rfs.localized_knn(
                rfs.leaf_of_item(5), database.features[5], 10
            )
            assert rfs.io.physical_reads > before_reads
            assert rfs.io.bytes_read > before_bytes
            assert store.stats["block_reads"] > blocks_before
            assert store.stats["bytes_read"] == (
                rfs.io.bytes_read - before_bytes
            )
        finally:
            rfs.detach_store()

    def test_vectors_for_uses_store(self, built):
        database, rfs = built
        store = FeatureStore.build(rfs, dtype="float64")
        rfs.attach_store(store)
        try:
            ids = np.array([3, 141, 590])
            assert np.array_equal(
                rfs.vectors_for(ids), database.features[ids]
            )
        finally:
            rfs.detach_store()

    def test_incremental_insert_detaches_store(self, built):
        database, rfs = built
        rfs.attach_store(FeatureStore.build(rfs))
        features_backup = rfs.features
        inc = IncrementalRFS(rfs, seed=1)
        try:
            inc.insert_image(np.zeros(database.dims))
            assert rfs.store is None
            # Queries still work through the in-memory path.
            result = rfs.localized_knn(
                rfs.leaf_of_item(0), database.features[0], 5
            )
            assert len(result) == 5
        finally:
            inc.remove_image(rfs.features.shape[0] - 1)
            rfs.features = features_backup
            rfs.detach_store()
            rfs.invalidate_caches()


# ----------------------------------------------------------------------
# Lifecycle: close(), idempotent re-attach, engine teardown
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_close_releases_memmap_and_is_idempotent(self, saved_store):
        _, _, directory = saved_store
        store = FeatureStore.open(directory, mode="memmap")
        node = next(iter(store.spans))
        store.node_block(node)  # works while open
        store.close()
        assert store.closed
        with pytest.raises(DatasetError):
            store.node_block(node)
        with pytest.raises(DatasetError):
            store.vectors_for(np.array([0]))
        store.close()  # second close is a no-op

    def test_reattach_same_store_is_noop(self, built):
        database, _ = built
        rfs = RFSStructure.build(
            database.features,
            RFSConfig(
                node_max_entries=60,
                node_min_entries=30,
                leaf_subclusters=4,
            ),
            seed=SEED,
        )
        store = FeatureStore.build(rfs)
        rfs.attach_store(store, validate=False)
        version = rfs.structure_version
        rfs.attach_store(store)  # same object: no validation, no bump
        assert rfs.store is store
        assert rfs.structure_version == version
        rfs.detach_store()
        assert rfs.structure_version == version + 1
        rfs.detach_store()  # nothing attached: no bump
        assert rfs.structure_version == version + 1

    def test_engine_close_releases_memmap_store(
        self, built, saved_store
    ):
        database, _ = built
        _, _, directory = saved_store
        store = FeatureStore.open(directory, mode="memmap")
        rfs = RFSStructure.build(
            database.features,
            RFSConfig(
                node_max_entries=60,
                node_min_entries=30,
                leaf_subclusters=4,
            ),
            seed=SEED,
        )
        engine = QueryDecompositionEngine(
            database, rfs, QDConfig(), store=store
        )
        engine.close()
        assert rfs.store is None
        assert store.closed
        engine.close()  # safe to call twice

    def test_engine_close_keeps_inmem_store_attached(self, built):
        database, _ = built
        rfs = RFSStructure.build(
            database.features,
            RFSConfig(
                node_max_entries=60,
                node_min_entries=30,
                leaf_subclusters=4,
            ),
            seed=SEED,
        )
        store = FeatureStore.build(rfs)
        engine = QueryDecompositionEngine(
            database, rfs, QDConfig(), store=store
        )
        engine.close()
        assert rfs.store is store
        assert not store.closed


# ----------------------------------------------------------------------
# Parity: inmem vs memmap, across executors — the acceptance property
# ----------------------------------------------------------------------
def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _run_session(database, store, executor, seed):
    rfs = RFSStructure.build(
        database.features,
        RFSConfig(
            node_max_entries=60, node_min_entries=30, leaf_subclusters=4
        ),
        seed=SEED,
    )
    if store is not None:
        rfs.attach_store(store)
    relevant = set(np.flatnonzero(database.labels == 3).tolist())
    relevant |= set(np.flatnonzero(database.labels == 7).tolist())
    engine = QueryDecompositionEngine(
        database, rfs, QDConfig(executor=executor, workers=2)
    )
    with engine:
        result = engine.run_scripted(
            lambda shown: [i for i in shown if i in relevant],
            k=50,
            seed=seed,
        )
    return _signature(result)


_EXECUTORS = ["serial", "thread"] + (
    ["process"] if ProcessSubqueryExecutor.fork_available() else []
)


class TestParity:
    @pytest.mark.parametrize("executor", _EXECUTORS)
    @pytest.mark.parametrize("seed", [11, 23])
    def test_inmem_and_memmap_rankings_bit_identical(
        self, saved_store, built, executor, seed
    ):
        database, _ = built
        _, _, directory = saved_store
        inmem = FeatureStore.open(directory, mode="inmem")
        memmap = FeatureStore.open(directory, mode="memmap")
        sig_inmem = _run_session(database, inmem, executor, seed)
        sig_memmap = _run_session(database, memmap, executor, seed)
        assert sig_inmem == sig_memmap

    @pytest.mark.parametrize("executor", _EXECUTORS)
    def test_executors_agree_on_store_rankings(
        self, saved_store, built, executor
    ):
        database, _ = built
        _, _, directory = saved_store
        store = FeatureStore.open(directory, mode="memmap")
        sig = _run_session(database, store, executor, 11)
        baseline = _run_session(
            database,
            FeatureStore.open(directory, mode="memmap"),
            "serial",
            11,
        )
        assert sig == baseline

    def test_store_ids_match_legacy_session(self, built):
        database, _ = built
        legacy = _run_session(database, None, "serial", 11)
        rfs = RFSStructure.build(
            database.features,
            RFSConfig(
                node_max_entries=60,
                node_min_entries=30,
                leaf_subclusters=4,
            ),
            seed=SEED,
        )
        stored = _run_session(
            database, FeatureStore.build(rfs), "serial", 11
        )
        legacy_ids = [[i for i, _ in group[1]] for group in legacy]
        stored_ids = [[i for i, _ in group[1]] for group in stored]
        assert legacy_ids == stored_ids
