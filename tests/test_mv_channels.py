"""Behavioural tests for the Multiple Viewpoints channel machinery."""

import numpy as np
import pytest

from repro.baselines.mv import Channel, MultipleViewpoints, default_channels
from repro.datasets.queryset import get_query
from repro.eval.oracle import SimulatedUser


class TestChannelTransforms:
    def test_color_channel_is_identity(self):
        channel = default_channels()[0]
        q = np.arange(37, dtype=float)
        assert np.array_equal(channel.transform(q), q)

    def test_bw_negative_flips_texture_only(self):
        channels = {c.name: c for c in default_channels()}
        q = np.ones(37)
        out = channels["bw-negative"].transform(q)
        assert np.all(out[9:19] == -1.0)
        assert np.all(out[:9] == 1.0)
        assert np.all(out[19:] == 1.0)

    def test_channels_are_frozen(self):
        channel = default_channels()[0]
        with pytest.raises(AttributeError):
            channel.name = "other"  # type: ignore[misc]


class TestChannelBehaviour:
    def test_color_channel_dominates_on_colorful_query(self, rendered_db):
        """For a rose query the colour channel's list is far more
        relevant than the negatives' lists."""
        technique = MultipleViewpoints(rendered_db, seed=0)
        query = get_query("rose")
        user = SimulatedUser(rendered_db, query, seed=0)
        technique.begin([user.pick_example(subconcept_index=0)])
        per_channel = technique.channel_results(30)
        relevant = user.relevant_ids()

        def hit_rate(name):
            ids = per_channel[name].ids()
            return sum(1 for i in ids if i in relevant) / len(ids)

        assert hit_rate("color") > hit_rate("color-negative")

    def test_single_channel_mv_equals_weighted_knn(self, rendered_db):
        """With only the colour channel MV degenerates to plain k-NN."""
        from repro.baselines.knn import GlobalKNN

        color_only = MultipleViewpoints(
            rendered_db, channels=default_channels()[:1], seed=0
        )
        knn = GlobalKNN(rendered_db, seed=0)
        color_only.begin([5])
        knn.begin([5])
        assert color_only.retrieve(20).ids() == knn.retrieve(20).ids()

    def test_custom_channel_weights_respected(self, rendered_db):
        """A channel that zeroes everything ranks by nothing — every
        distance collapses to zero and ids win ties."""
        null_channel = Channel(
            "null", np.ones(37), np.zeros(37)
        )
        technique = MultipleViewpoints(
            rendered_db, channels=[null_channel], seed=0
        )
        technique.begin([0])
        ids = technique.retrieve(5).ids()
        assert ids == [0, 1, 2, 3, 4]

    def test_share_allocation_across_channels(self, rendered_db):
        """Each channel contributes roughly k/4 of the combined set."""
        technique = MultipleViewpoints(rendered_db, seed=0)
        technique.begin([0])
        k = 40
        combined = technique.retrieve(k)
        assert len(combined) == k
        per_channel = technique.channel_results(k)
        # Every combined result appears in some channel's top-k list.
        union = set()
        for ranked in per_channel.values():
            union.update(ranked.ids())
        assert set(combined.ids()) <= union

    def test_feedback_moves_all_channels(self, rendered_db):
        technique = MultipleViewpoints(rendered_db, seed=0)
        technique.begin([0])
        before = technique._query_point.copy()
        far = int(rendered_db.ids_of_category("mountain_snow")[0])
        technique.feedback([far])
        assert not np.allclose(before, technique._query_point)
