"""Tests for the compressed scan tiers (repro.store.quantize).

Covers the quantization round-trip error bounds (property-based, via
hypothesis), the tier-aware byte accounting, the save -> open format
(version 2 with codes + params, version-1 back-compat, unknown-tag
rejection), zero-copy pickling of quantized stores, and — the
acceptance property, targeted by the no-skip ``Parity`` gate in
``scripts/check.sh`` — rankings on the ``f16`` and ``int8`` tiers
staying bit-identical to the pure-float32 path across executors,
backings, and cached reruns.

The small-``fetch`` sweep in ``TestQuantizedParity`` is a regression
test for a subtle trap: BLAS matrix-vector reductions change summation
order with the matrix's row count, so re-ranking a *gathered* candidate
matrix produces last-ulp-different distances than the full-block scan.
The re-rank must rerun the exact kernel over full leaf blocks.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import SubqueryResultCache
from repro.config import QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.errors import ConfigurationError, StoreCodecError
from repro.exec import ProcessSubqueryExecutor
from repro.index.rfs import RFSStructure
from repro.index.serialize import load_rfs, save_rfs
from repro.store import (
    FeatureStore,
    QuantizationParams,
    dequantize,
    dequantized_sqnorms,
    quantize_matrix,
)

N_IMAGES = 900
SEED = 2006
RFS_CONFIG = RFSConfig(
    node_max_entries=60, node_min_entries=30, leaf_subclusters=4
)

_EXECUTORS = ["serial", "thread"] + (
    ["process"] if ProcessSubqueryExecutor.fork_available() else []
)
_QUANT_TIERS = ["f16", "int8"]


@pytest.fixture(scope="module")
def database():
    from repro.datasets.build import build_synthetic_database

    return build_synthetic_database(N_IMAGES, n_categories=30, seed=SEED)


@pytest.fixture(scope="module")
def rfs_f32(database):
    return _build_rfs(database)


def _build_rfs(database) -> RFSStructure:
    return RFSStructure.build(database.features, RFS_CONFIG, seed=SEED)


def _signature(result):
    return [
        (
            group.leaf_node_id,
            tuple((item.item_id, item.score) for item in group.items),
        )
        for group in result.groups
    ]


def _run_session(database, store, executor, *, k=50, cache=None, seed=11):
    rfs = _build_rfs(database)
    if store is not None:
        rfs.attach_store(store)
    if cache is not None:
        rfs.attach_cache(cache)
    relevant = set(np.flatnonzero(database.labels == 3).tolist())
    relevant |= set(np.flatnonzero(database.labels == 7).tolist())
    engine = QueryDecompositionEngine(
        database, rfs, QDConfig(executor=executor, workers=2)
    )
    with engine:
        result = engine.run_scripted(
            lambda shown: [i for i in shown if i in relevant],
            k=k,
            seed=seed,
        )
    return _signature(result)


# ----------------------------------------------------------------------
# Quantization round-trip error bounds (property-based)
# ----------------------------------------------------------------------
_matrices = st.integers(0, 2**32 - 1).flatmap(
    lambda seed: st.tuples(
        st.just(seed),
        st.integers(2, 40),
        st.integers(2, 12),
        st.floats(0.01, 100.0),
    )
)


def _random_matrix(seed, rows, dims, spread):
    rng = np.random.default_rng(seed)
    return rng.normal(0.0, spread, size=(rows, dims)).astype(np.float32)


class TestRoundTripBounds:
    @settings(max_examples=60, deadline=None)
    @given(_matrices)
    def test_int8_error_within_half_step(self, params):
        seed, rows, dims, spread = params
        matrix = _random_matrix(seed, rows, dims, spread)
        codes, quant = quantize_matrix(matrix, "int8")
        assert codes.dtype == np.int8
        recon = dequantize(codes, quant)
        err = np.abs(recon - matrix)
        # Nearest-step rounding: per-dim error <= scale/2 (tiny float
        # slack for the affine decode arithmetic itself).
        limit = quant.scale * 0.5 * (1.0 + 1e-4) + 1e-9
        assert np.all(err <= limit[None, :])
        # The recorded per-dim bound is the measured max, so it is both
        # valid and tight.
        assert np.all(err <= quant.dim_err[None, :] + 1e-12)
        assert np.allclose(err.max(axis=0), quant.dim_err, atol=1e-12)
        assert quant.err_bound == pytest.approx(
            float(np.sqrt(np.sum(quant.dim_err**2)))
        )

    @settings(max_examples=60, deadline=None)
    @given(_matrices)
    def test_f16_error_within_half_ulp(self, params):
        seed, rows, dims, spread = params
        matrix = _random_matrix(seed, rows, dims, spread)
        codes, quant = quantize_matrix(matrix, "f16")
        assert codes.dtype == np.float16
        recon = dequantize(codes, quant)
        err = np.abs(recon - matrix)
        # Round-to-nearest half precision: error <= ulp(x)/2, i.e.
        # <= |x| * 2^-11 for normal values (+ the subnormal floor).
        limit = np.abs(matrix) * 2.0**-11 + 2.0**-24
        assert np.all(err <= limit)
        assert np.all(err <= quant.dim_err[None, :] + 1e-12)

    @settings(max_examples=30, deadline=None)
    @given(_matrices, st.integers(0, 2**32 - 1))
    def test_distance_error_bounded_by_epsilon(self, params, qseed):
        """|dist(x̂,q) - dist(x,q)| <= ε — the scan's pruning contract."""
        seed, rows, dims, spread = params
        matrix = _random_matrix(seed, rows, dims, spread)
        query = np.random.default_rng(qseed).normal(
            0.0, spread, size=dims
        )
        for tier in _QUANT_TIERS:
            codes, quant = quantize_matrix(matrix, tier)
            recon = dequantize(codes, quant).astype(np.float64)
            exact = np.linalg.norm(matrix.astype(np.float64) - query, axis=1)
            approx = np.linalg.norm(recon - query, axis=1)
            slack = quant.err_bound * (1.0 + 1e-6) + 1e-9
            assert np.all(np.abs(approx - exact) <= slack)

    def test_constant_dimensions_reconstruct_exactly(self):
        matrix = np.full((10, 4), 3.25, dtype=np.float32)
        matrix[:, 2] = -1.5
        codes, quant = quantize_matrix(matrix, "int8")
        assert np.all(quant.scale[np.ptp(matrix, axis=0) == 0] == 1.0)
        assert np.array_equal(dequantize(codes, quant), matrix)
        assert quant.err_bound == 0.0

    def test_weighted_err_bound(self):
        rng = np.random.default_rng(5)
        matrix = rng.normal(size=(30, 6)).astype(np.float32)
        _, quant = quantize_matrix(matrix, "int8")
        w = rng.uniform(0.1, 3.0, size=6)
        expected = float(np.sqrt(np.sum(w * quant.dim_err**2)))
        assert quant.weighted_err_bound(w) == pytest.approx(expected)
        assert quant.weighted_err_bound(None) == quant.err_bound

    def test_dequantize_unknown_tier_raises(self):
        params = QuantizationParams(
            tier="pq4",
            scale=np.ones(2, dtype=np.float32),
            offset=np.zeros(2, dtype=np.float32),
            dim_err=np.zeros(2),
            err_bound=0.0,
        )
        with pytest.raises(StoreCodecError):
            dequantize(np.zeros((1, 2), dtype=np.int8), params)

    def test_quantize_rejects_f32(self):
        with pytest.raises(ConfigurationError):
            quantize_matrix(np.zeros((2, 2), dtype=np.float32), "f32")


# ----------------------------------------------------------------------
# Tier-aware store accounting
# ----------------------------------------------------------------------
class TestTierAccounting:
    @pytest.mark.parametrize(
        "tier,ratio", [("f32", 1.0), ("f16", 2.0), ("int8", 4.0)]
    )
    def test_compression_ratio_and_block_bytes(
        self, rfs_f32, tier, ratio
    ):
        store = FeatureStore.build(rfs_f32, tier=tier)
        assert store.compression_ratio == pytest.approx(ratio)
        leaf = next(
            n.node_id for n in rfs_f32.iter_nodes() if n.is_leaf
        )
        start, stop = store.span_of(leaf)
        dims = store.matrix.shape[1]
        assert store.block_nbytes(leaf) == (
            (stop - start) * dims * store.scan_itemsize
        )

    def test_dq_sqnorms_match_reconstruction(self, rfs_f32):
        store = FeatureStore.build(rfs_f32, tier="int8")
        recon = dequantize(np.asarray(store.codes), store.quant)
        assert np.array_equal(
            store.dq_sqnorms, np.einsum("ij,ij->i", recon, recon)
        )
        assert np.array_equal(
            store.dq_sqnorms,
            dequantized_sqnorms(np.asarray(store.codes), store.quant),
        )

    def test_fingerprint_separates_tiers(self, rfs_f32):
        prints = {
            FeatureStore.build(rfs_f32, tier=tier).fingerprint()
            for tier in ("f32", "f16", "int8")
        }
        assert len(prints) == 3

    def test_build_rejects_bad_tier_and_margin(self, rfs_f32):
        with pytest.raises(ConfigurationError):
            FeatureStore.build(rfs_f32, tier="pq4")
        with pytest.raises(ConfigurationError):
            FeatureStore.build(rfs_f32, rerank_margin=-1)


# ----------------------------------------------------------------------
# Persistence: format v2, v1 back-compat, corrupt/unknown rejection
# ----------------------------------------------------------------------
class TestQuantizedRoundtrip:
    @pytest.mark.parametrize("tier", _QUANT_TIERS)
    @pytest.mark.parametrize("mode", ["memmap", "inmem"])
    def test_save_open_preserves_tier(self, rfs_f32, tmp_path, tier, mode):
        store = FeatureStore.build(rfs_f32, tier=tier, rerank_margin=17)
        directory = tmp_path / tier
        store.save(directory)
        loaded = FeatureStore.open(directory, mode=mode)
        assert loaded.tier == tier
        assert np.array_equal(
            np.asarray(loaded.codes), np.asarray(store.codes)
        )
        assert np.array_equal(loaded.quant.scale, store.quant.scale)
        assert np.array_equal(loaded.quant.offset, store.quant.offset)
        assert np.array_equal(loaded.quant.dim_err, store.quant.dim_err)
        assert np.array_equal(loaded.dq_sqnorms, store.dq_sqnorms)
        assert np.array_equal(loaded.sqnorms, store.sqnorms)
        assert loaded.fingerprint() == store.fingerprint()
        if mode == "memmap":
            assert isinstance(loaded.codes, np.memmap)

    def test_version1_directory_opens_as_f32(self, rfs_f32, tmp_path):
        store = FeatureStore.build(rfs_f32)
        directory = tmp_path / "v1"
        store.save(directory)
        meta = dict(np.load(directory / "meta.npz"))
        # Version 1 predates scan tiers and persisted norms.
        del meta["tier"], meta["sqnorms"]
        meta["format_version"] = np.int64(1)
        np.savez_compressed(directory / "meta.npz", **meta)
        loaded = FeatureStore.open(directory)
        assert loaded.tier == "f32"
        assert np.array_equal(
            np.asarray(loaded.matrix), np.asarray(store.matrix)
        )

    def test_unknown_tier_tag_rejected(self, rfs_f32, tmp_path):
        store = FeatureStore.build(rfs_f32, tier="int8")
        directory = tmp_path / "tagged"
        store.save(directory)
        meta = dict(np.load(directory / "meta.npz"))
        meta["tier"] = np.array("pq4")
        np.savez_compressed(directory / "meta.npz", **meta)
        with pytest.raises(StoreCodecError):
            FeatureStore.open(directory)

    def test_future_format_version_rejected(self, rfs_f32, tmp_path):
        store = FeatureStore.build(rfs_f32)
        directory = tmp_path / "future"
        store.save(directory)
        meta = dict(np.load(directory / "meta.npz"))
        meta["format_version"] = np.int64(99)
        np.savez_compressed(directory / "meta.npz", **meta)
        with pytest.raises(StoreCodecError):
            FeatureStore.open(directory)

    def test_missing_codes_file_rejected(self, rfs_f32, tmp_path):
        store = FeatureStore.build(rfs_f32, tier="int8")
        directory = tmp_path / "codeless"
        store.save(directory)
        (directory / "codes.bin").unlink()
        with pytest.raises(StoreCodecError):
            FeatureStore.open(directory)

    def test_pickle_ships_paths_not_code_bytes(self, rfs_f32, tmp_path):
        store = FeatureStore.build(rfs_f32, tier="int8")
        directory = tmp_path / "pickled"
        store.save(directory)
        loaded = FeatureStore.open(directory, mode="memmap")
        blob = pickle.dumps(loaded)
        assert len(blob) < loaded.nbytes / 2
        clone = pickle.loads(blob)
        assert clone.tier == "int8"
        assert np.array_equal(
            np.asarray(clone.codes), np.asarray(loaded.codes)
        )

    def test_save_load_rfs_keeps_quantization(self, database, tmp_path):
        rfs = _build_rfs(database)
        rfs.attach_store(
            FeatureStore.build(rfs, tier="int8"), validate=False
        )
        rfs_path = tmp_path / "rfs.npz"
        store_dir = tmp_path / "store"
        save_rfs(rfs, rfs_path, store_dir=store_dir)
        loaded = load_rfs(
            rfs_path, database.features, store_dir=store_dir
        )
        assert loaded.store is not None
        assert loaded.store.tier == "int8"
        assert loaded.store.fingerprint() == rfs.store.fingerprint()


# ----------------------------------------------------------------------
# Bit-identical rankings vs the float32 tier (the check.sh gate)
# ----------------------------------------------------------------------
class TestQuantizedParity:
    @pytest.fixture(scope="class")
    def f32_baselines(self, database):
        return {
            (executor, k): _run_session(
                database, self._store(database, "f32"), executor, k=k
            )
            for executor in _EXECUTORS
            for k in (50, 200)
        }

    @staticmethod
    def _store(database, tier):
        return FeatureStore.build(_build_rfs(database), tier=tier)

    @pytest.mark.parametrize("tier", _QUANT_TIERS)
    @pytest.mark.parametrize("executor", _EXECUTORS)
    @pytest.mark.parametrize("k", [50, 200])
    def test_sessions_bit_identical_to_f32(
        self, database, f32_baselines, tier, executor, k
    ):
        sig = _run_session(
            database, self._store(database, tier), executor, k=k
        )
        assert sig == f32_baselines[(executor, k)]

    @pytest.mark.parametrize("tier", _QUANT_TIERS)
    @pytest.mark.parametrize("mode", ["memmap", "inmem"])
    def test_reopened_backings_bit_identical_to_f32(
        self, database, f32_baselines, tmp_path, tier, mode
    ):
        directory = tmp_path / f"{tier}-{mode}"
        self._store(database, tier).save(directory)
        sig = _run_session(
            database,
            FeatureStore.open(directory, mode=mode),
            "serial",
            k=200,
        )
        assert sig == f32_baselines[("serial", 200)]

    @pytest.mark.parametrize("tier", _QUANT_TIERS)
    def test_cached_rerun_bit_identical_to_f32(
        self, database, f32_baselines, tier
    ):
        cache = SubqueryResultCache(16 << 20)
        store = self._store(database, tier)
        cold = _run_session(
            database, store, "serial", k=200, cache=cache
        )
        warm = _run_session(
            database, store, "serial", k=200, cache=cache
        )
        assert cold == f32_baselines[("serial", 200)]
        assert warm == f32_baselines[("serial", 200)]
        assert cache.snapshot()["hits"] > 0

    @pytest.mark.parametrize("tier", _QUANT_TIERS)
    def test_batch_scheduler_bit_identical_to_f32(self, database, tier):
        from repro.core.ranking import execute_final_round
        from repro.exec import BatchQuery, run_final_round_batch

        def marks(label):
            return tuple(
                int(i)
                for i in np.flatnonzero(database.labels == label)[:6]
            )

        queries = [
            BatchQuery(marked_ids=marks(3), k=40),
            BatchQuery(marked_ids=marks(7), k=25),
            BatchQuery(marked_ids=marks(3), k=40),  # coalesces with #0
        ]
        f32 = _build_rfs(database)
        f32.attach_store(FeatureStore.build(f32, tier="f32"))
        baseline = [
            _signature(
                execute_final_round(
                    f32, q.marked_ids, q.k, QDConfig(), rounds_used=1
                )
            )
            for q in queries
        ]
        quant = _build_rfs(database)
        quant.attach_store(FeatureStore.build(quant, tier=tier))
        quant.attach_cache(SubqueryResultCache(8 << 20))
        results = run_final_round_batch(
            quant,
            queries,
            QDConfig(executor="thread", workers=2),
            rounds_used=1,
        )
        assert [_signature(r) for r in results] == baseline

    @pytest.mark.parametrize("tier", _QUANT_TIERS)
    def test_small_fetch_localized_knn_parity(self, database, tier):
        """Regression: tiny fetches once diverged in the last ulp.

        The gathered-candidate re-rank fed BLAS a matrix with a
        different row count than the full-block scan, and gemv's
        reduction order (hence the final float) depends on that count.
        Sweep every node at small fetch sizes where the old
        implementation reliably diverged.
        """
        f32 = _build_rfs(database)
        f32.attach_store(FeatureStore.build(f32, tier="f32"))
        quant = _build_rfs(database)
        quant.attach_store(FeatureStore.build(quant, tier=tier))
        rng = np.random.default_rng(7)
        queries = database.features[
            rng.integers(0, database.size, size=3)
        ]
        weights = rng.uniform(0.5, 2.0, size=database.features.shape[1])
        for node in f32.iter_nodes():
            other = quant.get_node(node.node_id)
            for fetch in (1, 3, 10):
                take = min(fetch, node.size)
                for query in queries:
                    assert f32.localized_knn(
                        node, query, take
                    ) == quant.localized_knn(other, query, take)
            assert f32.localized_knn(
                node, queries[0], min(10, node.size), weights=weights
            ) == quant.localized_knn(
                other, queries[0], min(10, node.size), weights=weights
            )
