"""Cross-module integration tests: full pipelines end to end."""

import numpy as np
import pytest

from repro import (
    DatasetConfig,
    QueryDecompositionEngine,
    RFSConfig,
    build_rendered_database,
    build_synthetic_database,
    get_query,
)
from repro.baselines import GlobalKNN, MultipleViewpoints
from repro.eval import SimulatedUser, gtir, precision_at
from repro.eval.protocol import run_baseline_session, run_qd_session
from repro.features import FeatureExtractor
from repro.imaging.scenes import render_scene


class TestPipelineImageToResult:
    """Render → extract → index → query, with no fixtures."""

    def test_fresh_pipeline(self):
        db = build_rendered_database(
            DatasetConfig(total_images=400, n_categories=30, seed=99)
        )
        # At 400 images the paper's 5 % representative budget is too
        # thin to cover 30 categories; scale it up with the density.
        engine = QueryDecompositionEngine.build(
            db,
            RFSConfig(node_max_entries=40, node_min_entries=20,
                      leaf_subclusters=3,
                      representative_fraction=0.2),
            seed=99,
        )
        query = get_query("rose")
        user = SimulatedUser(db, query, seed=99)
        result = engine.run_scripted(user.mark, k=20, seed=99)
        ids = result.flatten(20)
        assert len(ids) == 20
        assert precision_at(ids, db, query) > 0.3

    def test_query_image_outside_database(self, engine):
        """A brand-new rendered image can be projected into the
        database's normalised feature space."""
        db = engine.database
        img = render_scene("bird_owl", 32, np.random.default_rng(1234))
        raw = FeatureExtractor().extract(img)
        projected = db.normalizer.transform_one(raw)
        owl_centroid = db.features[db.ids_of_category("bird_owl")].mean(
            axis=0
        )
        rose_centroid = db.features[db.ids_of_category("rose_red")].mean(
            axis=0
        )
        assert np.linalg.norm(projected - owl_centroid) < np.linalg.norm(
            projected - rose_centroid
        )


class TestScatteredVsCompactQueries:
    def test_scattered_query_needs_multiple_groups(self, engine):
        """'bird' subconcepts live in distinct clusters → several
        localized subqueries."""
        db = engine.database
        query = get_query("bird")
        user = SimulatedUser(db, query, seed=0)
        result = engine.run_scripted(user.mark, k=40, seed=0)
        assert result.n_groups >= 2

    def test_each_group_is_subconcept_coherent(self, engine):
        """Most images in a group share the group's dominant category —
        the grouped presentation of Figure 3."""
        db = engine.database
        query = get_query("bird")
        user = SimulatedUser(db, query, seed=1)
        result = engine.run_scripted(user.mark, k=40, seed=1)
        for group in result.groups:
            ids = group.items.ids()
            if len(ids) < 4:
                continue
            cats = [db.category_of(i) for i in ids]
            dominant = max(set(cats), key=cats.count)
            assert cats.count(dominant) / len(cats) > 0.4


class TestHeadlineComparisons:
    def test_qd_gtir_reaches_one_on_most_queries(self, engine):
        hits = 0
        queries = ("person", "bird", "computer", "water_sports")
        for name in queries:
            result, _ = run_qd_session(
                engine, get_query(name), seed=7
            )
            if result.stats["gtir"] == 1.0:
                hits += 1
        assert hits >= 3

    def test_knn_confined_to_single_neighbourhood(self, engine):
        """Plain k-NN from one example misses scattered subconcepts."""
        db = engine.database
        query = get_query("person")
        technique = GlobalKNN(db, seed=0)
        records = run_baseline_session(
            technique, query, rounds=3, seed=0, example_subconcept=0
        )
        assert records[-1].gtir < 1.0

    def test_qd_beats_mv_aggregate(self, engine):
        db = engine.database
        qd_scores, mv_scores = [], []
        for name in ("bird", "person", "rose"):
            query = get_query(name)
            result, _ = run_qd_session(engine, query, seed=3)
            qd_scores.append(result.stats["precision"])
            mv = MultipleViewpoints(db, seed=3)
            recs = run_baseline_session(mv, query, rounds=3, seed=3)
            mv_scores.append(recs[-1].precision)
        assert np.mean(qd_scores) > np.mean(mv_scores)


class TestIOAccounting:
    def test_feedback_io_independent_of_db_size(self):
        """§5.2.2/§6: feedback reads only representative nodes, so the
        page count per round does not grow with the database."""
        reads = []
        for size in (600, 1800):
            db = build_synthetic_database(size, n_categories=30, seed=2)
            engine = QueryDecompositionEngine.build(
                db,
                RFSConfig(node_max_entries=60, node_min_entries=30),
                seed=2,
            )
            target = db.category_names[0]
            engine.io.reset()
            engine.run_scripted(
                lambda shown: [
                    i for i in shown if db.category_of(i) == target
                ],
                k=10,
                seed=2,
            )
            reads.append(engine.io.per_category.get("feedback", 0))
        assert reads[1] <= reads[0] * 3  # near-constant, not linear

    def test_localized_knn_reads_few_pages(self, engine):
        db = engine.database
        query = get_query("rose")
        user = SimulatedUser(db, query, seed=4)
        engine.io.reset()
        engine.run_scripted(user.mark, k=20, seed=4)
        n_leaves = sum(1 for n in engine.rfs.iter_nodes() if n.is_leaf)
        knn_reads = engine.io.per_category.get("localized_knn", 0)
        assert knn_reads < n_leaves  # far from a full scan

    def test_no_global_knn_during_feedback(self, engine):
        db = engine.database
        user = SimulatedUser(db, get_query("bird"), seed=5)
        engine.io.reset()
        session = engine.new_session(seed=5)
        for _ in range(3):
            session.submit(user.mark(session.display(screens=4)))
        # Feedback rounds never touched any k-NN category.
        assert "localized_knn" not in engine.io.per_category
        assert "knn" not in engine.io.per_category


class TestNoiseRobustness:
    def test_qd_survives_noisy_users(self, engine):
        """With 20 % misses and 5 % false marks the session still
        finds most subconcepts."""
        query = get_query("bird")
        result, _ = run_qd_session(
            engine, query, seed=6, miss_rate=0.2, false_mark_rate=0.05
        )
        assert result.stats["gtir"] >= 2 / 3
        assert result.stats["precision"] > 0.3
