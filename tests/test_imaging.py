"""Tests for the procedural imaging substrate."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DatasetError
from repro.imaging.canvas import Canvas
from repro.imaging.palettes import COLORS, PALETTES, jitter_color, mix
from repro.imaging.scenes import (
    SCENE_RENDERERS,
    make_distractor_renderer,
    render_car_sedan,
    render_scene,
)


class TestPalettes:
    def test_colors_in_unit_range(self):
        for name, color in COLORS.items():
            assert all(0.0 <= c <= 1.0 for c in color), name

    def test_palettes_reference_valid_colors(self):
        for name, palette in PALETTES.items():
            assert len(palette) >= 3, name
            for color in palette:
                assert all(0.0 <= c <= 1.0 for c in color)

    def test_jitter_stays_in_range(self, rng):
        for _ in range(50):
            out = jitter_color((0.99, 0.01, 0.5), rng, amount=0.1)
            assert all(0.0 <= c <= 1.0 for c in out)

    def test_jitter_is_small(self, rng):
        base = (0.5, 0.5, 0.5)
        out = jitter_color(base, rng, amount=0.02)
        assert all(abs(a - b) <= 0.02 + 1e-12 for a, b in zip(out, base))

    def test_mix_endpoints(self):
        a, b = (0.0, 0.0, 0.0), (1.0, 1.0, 1.0)
        assert mix(a, b, 0.0) == a
        assert mix(a, b, 1.0) == b
        assert mix(a, b, 0.5) == (0.5, 0.5, 0.5)


class TestCanvas:
    def test_initial_background(self):
        c = Canvas(8, background=(0.2, 0.4, 0.6))
        assert np.allclose(c.image()[0, 0], [0.2, 0.4, 0.6])

    def test_too_small_rejected(self):
        with pytest.raises(ConfigurationError):
            Canvas(2)

    def test_fill(self):
        img = Canvas(8).fill((1.0, 0.0, 0.0)).image()
        assert np.allclose(img[..., 0], 1.0)
        assert np.allclose(img[..., 1], 0.0)

    def test_vertical_gradient_direction(self):
        img = Canvas(16).vertical_gradient((0, 0, 0), (1, 1, 1)).image()
        assert img[0, 8, 0] < img[15, 8, 0]

    def test_horizontal_gradient_direction(self):
        img = Canvas(16).horizontal_gradient((0, 0, 0), (1, 1, 1)).image()
        assert img[8, 0, 0] < img[8, 15, 0]

    def test_rectangle_covers_region(self):
        img = Canvas(16).rectangle(0.25, 0.25, 0.75, 0.75,
                                   (1, 1, 1)).image()
        assert img[8, 8, 0] == 1.0
        assert img[0, 0, 0] == 0.0

    def test_rectangle_swapped_corners(self):
        a = Canvas(16).rectangle(0.75, 0.75, 0.25, 0.25, (1, 1, 1)).image()
        b = Canvas(16).rectangle(0.25, 0.25, 0.75, 0.75, (1, 1, 1)).image()
        assert np.array_equal(a, b)

    def test_circle_center_and_outside(self):
        img = Canvas(32).circle(0.5, 0.5, 0.2, (0, 1, 0)).image()
        assert img[16, 16, 1] == 1.0
        assert img[0, 0, 1] == 0.0

    def test_ellipse_rotation_changes_mask(self):
        flat = Canvas(32).ellipse(0.5, 0.5, 0.4, 0.1, (1, 1, 1)).image()
        rot = Canvas(32).ellipse(0.5, 0.5, 0.4, 0.1, (1, 1, 1),
                                 angle=np.pi / 2).image()
        assert not np.array_equal(flat, rot)

    def test_polygon_triangle_contains_centroid(self):
        img = Canvas(32).polygon(
            [(0.2, 0.8), (0.8, 0.8), (0.5, 0.2)], (1, 0, 0)
        ).image()
        assert img[18, 16, 0] == 1.0  # near the centroid
        assert img[2, 2, 0] == 0.0

    def test_polygon_needs_three_points(self):
        with pytest.raises(ConfigurationError):
            Canvas(8).polygon([(0, 0), (1, 1)], (1, 1, 1))

    def test_line_degenerate_draws_dot(self):
        img = Canvas(32).line(0.5, 0.5, 0.5, 0.5, (1, 1, 1),
                              width=0.05).image()
        assert img[16, 16, 0] == 1.0

    def test_line_connects_endpoints(self):
        img = Canvas(32).line(0.1, 0.5, 0.9, 0.5, (1, 1, 1),
                              width=0.03).image()
        assert img[16, 5, 0] == 1.0
        assert img[16, 28, 0] == 1.0
        assert img[2, 16, 0] == 0.0

    def test_alpha_blending(self):
        img = Canvas(8, background=(0, 0, 0)).rectangle(
            0, 0, 1, 1, (1, 1, 1), alpha=0.5
        ).image()
        assert np.allclose(img, 0.5)

    def test_noise_bounded(self, rng):
        img = Canvas(16, background=(0.5, 0.5, 0.5)).noise(
            rng, amount=0.1
        ).image()
        assert img.min() >= 0.35 and img.max() <= 0.65

    def test_smooth_noise_stays_valid(self, rng):
        img = Canvas(16, background=(0.5, 0.5, 0.5)).smooth_noise(
            rng, cells=4, amount=0.3
        ).image()
        assert img.min() >= 0.0 and img.max() <= 1.0

    def test_stripes_alternate(self):
        img = Canvas(16).stripes((1, 1, 1), count=4, alpha=1.0).image()
        column = img[:, 8, 0]
        assert column.min() == 0.0 and column.max() == 1.0

    def test_checker_pattern(self):
        img = Canvas(16).checker((1, 1, 1), count=2, alpha=1.0).image()
        assert img[2, 2, 0] != img[2, 10, 0]

    def test_speckle_density(self, rng):
        img = Canvas(64).speckle(rng, (1, 1, 1), density=0.1).image()
        frac = (img[..., 0] == 1.0).mean()
        assert 0.03 < frac < 0.2

    def test_image_values_clipped(self, rng):
        c = Canvas(8, background=(0.9, 0.9, 0.9))
        c.noise(rng, amount=0.5)
        img = c.image()
        assert img.max() <= 1.0 and img.min() >= 0.0


class TestScenes:
    @pytest.mark.parametrize("name", sorted(SCENE_RENDERERS))
    def test_every_scene_renders_valid_image(self, name, rng):
        img = render_scene(name, 32, rng)
        assert img.shape == (32, 32, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0
        assert np.isfinite(img).all()

    def test_unknown_scene_raises(self, rng):
        with pytest.raises(DatasetError):
            render_scene("no_such_scene", 32, rng)

    def test_scene_respects_size(self, rng):
        img = render_scene("bird_owl", 48, rng)
        assert img.shape == (48, 48, 3)

    def test_same_seed_same_image(self):
        a = render_scene("rose_red", 32, np.random.default_rng(5))
        b = render_scene("rose_red", 32, np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_intra_category_jitter(self, rng):
        a = render_scene("rose_red", 32, rng)
        b = render_scene("rose_red", 32, rng)
        assert not np.array_equal(a, b)

    def test_sedan_pose_invalid_raises(self, rng):
        with pytest.raises(DatasetError):
            render_car_sedan(32, rng, pose="topdown")

    def test_sedan_any_pose_renders(self, rng):
        img = render_car_sedan(32, rng, pose="any")
        assert img.shape == (32, 32, 3)

    def test_sedan_poses_differ_visibly(self):
        images = {
            pose: render_car_sedan(32, np.random.default_rng(1), pose=pose)
            for pose in ("side", "front", "back", "angle")
        }
        poses = list(images)
        for i, a in enumerate(poses):
            for b in poses[i + 1:]:
                diff = np.abs(images[a] - images[b]).mean()
                assert diff > 0.01, (a, b)


class TestDistractors:
    def test_renderer_produces_valid_images(self, rng):
        render = make_distractor_renderer("warm", "blobs", 7)
        img = render(32, rng)
        assert img.shape == (32, 32, 3)
        assert img.min() >= 0.0 and img.max() <= 1.0

    @pytest.mark.parametrize(
        "style",
        ["blobs", "stripes", "checker", "gradient", "rings", "polys",
         "cloud"],
    )
    def test_all_styles_render(self, style, rng):
        render = make_distractor_renderer("cool", style, 3)
        assert render(32, rng).shape == (32, 32, 3)

    def test_unknown_palette_raises(self):
        with pytest.raises(DatasetError):
            make_distractor_renderer("nope", "blobs", 1)

    def test_unknown_style_raises(self):
        with pytest.raises(DatasetError):
            make_distractor_renderer("warm", "nope", 1)

    def test_category_layout_is_stable(self, rng):
        """Same style seed → same layout, different fine detail."""
        render = make_distractor_renderer("earth", "rings", 11)
        a = render(32, np.random.default_rng(0))
        b = render(32, np.random.default_rng(1))
        # Images differ (noise) but correlate strongly (shared layout).
        assert not np.array_equal(a, b)
        corr = np.corrcoef(a.ravel(), b.ravel())[0, 1]
        assert corr > 0.8
