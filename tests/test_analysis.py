"""Tests for rank metrics and session diagnostics."""

import numpy as np
import pytest

from repro.datasets.queryset import get_query
from repro.errors import EvaluationError
from repro.eval.analysis import (
    average_precision,
    diagnose_result,
    ndcg,
    precision_recall_points,
)
from repro.eval.oracle import SimulatedUser
from repro.eval.protocol import run_qd_session


class TestAveragePrecision:
    def test_perfect_ranking(self):
        assert average_precision([1, 2, 3], {1, 2, 3}) == 1.0

    def test_no_hits(self):
        assert average_precision([4, 5], {1, 2}) == 0.0

    def test_known_value(self):
        # Hits at ranks 1 and 3 of a 2-relevant set:
        # AP = (1/1 + 2/3) / 2 = 5/6.
        assert average_precision([1, 9, 2], {1, 2}) == pytest.approx(
            5 / 6
        )

    def test_prefers_early_hits(self):
        early = average_precision([1, 9, 8], {1})
        late = average_precision([9, 8, 1], {1})
        assert early > late

    def test_empty_relevant_rejected(self):
        with pytest.raises(EvaluationError):
            average_precision([1], set())

    def test_empty_ranking(self):
        assert average_precision([], {1}) == 0.0


class TestNdcg:
    def test_perfect(self):
        assert ndcg([1, 2], {1, 2}) == pytest.approx(1.0)

    def test_zero(self):
        assert ndcg([5, 6], {1}) == 0.0

    def test_order_sensitivity(self):
        assert ndcg([1, 9], {1}) > ndcg([9, 1], {1})

    def test_bounded(self, rng):
        for _ in range(10):
            ranked = rng.permutation(20).tolist()
            relevant = set(rng.choice(20, size=5, replace=False).tolist())
            value = ndcg(ranked, relevant)
            assert 0.0 <= value <= 1.0

    def test_empty_ranking(self):
        assert ndcg([], {1}) == 0.0

    def test_empty_relevant_rejected(self):
        with pytest.raises(EvaluationError):
            ndcg([1], set())


class TestPrecisionRecallPoints:
    def test_monotone_recall(self):
        points = precision_recall_points(
            [1, 9, 2, 8, 3], {1, 2, 3}, ks=[1, 3, 5]
        )
        recalls = [r for _, _, r in points]
        assert recalls == sorted(recalls)

    def test_values(self):
        points = precision_recall_points([1, 9], {1, 2}, ks=[2])
        k, precision, recall = points[0]
        assert (k, precision, recall) == (2, 0.5, 0.5)

    def test_invalid_k_rejected(self):
        with pytest.raises(EvaluationError):
            precision_recall_points([1], {1}, ks=[0])


class TestDiagnoseResult:
    @pytest.fixture(scope="class")
    def diagnosis(self, engine):
        query = get_query("bird")
        result, _ = run_qd_session(engine, query, seed=3)
        return diagnose_result(result, engine.database, query), query

    def test_metrics_in_range(self, diagnosis):
        diag, _ = diagnosis
        assert 0.0 <= diag.precision <= 1.0
        assert 0.0 <= diag.average_precision <= 1.0
        assert 0.0 <= diag.ndcg <= 1.0

    def test_subconcept_reports_complete(self, diagnosis):
        diag, query = diagnosis
        assert len(diag.subconcepts) == query.n_subconcepts
        for sub in diag.subconcepts:
            assert sub.ground_truth_size > 0
            assert 0 <= sub.retrieved

    def test_gtir_matches_coverage(self, diagnosis):
        diag, _ = diagnosis
        covered = sum(1 for s in diag.subconcepts if s.covered)
        assert diag.gtir == pytest.approx(
            covered / len(diag.subconcepts)
        )

    def test_missed_subconcepts_listed(self, diagnosis):
        diag, _ = diagnosis
        for name in diag.missed_subconcepts():
            sub = next(s for s in diag.subconcepts if s.name == name)
            assert not sub.covered

    def test_group_reports(self, diagnosis):
        diag, _ = diagnosis
        assert diag.groups
        for group in diag.groups:
            assert 0.0 < group.purity <= 1.0
            assert 0.0 <= group.relevant_fraction <= 1.0

    def test_histogram_sums_to_results(self, diagnosis, engine):
        diag, query = diagnosis
        total = sum(diag.category_histogram.values())
        assert total == sum(g.size for g in diag.groups)

    def test_format_mentions_subconcepts(self, diagnosis):
        diag, query = diagnosis
        text = diag.format()
        for sub in query.subconcepts:
            assert sub.name in text
