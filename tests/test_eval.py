"""Tests for the evaluation harness: metrics, oracle, protocols, reports."""

import numpy as np
import pytest

from repro.baselines import GlobalKNN, MultipleViewpoints
from repro.datasets.queryset import get_query
from repro.errors import EvaluationError
from repro.eval.metrics import (
    gtir,
    precision_at,
    recall_at,
    retrieved_subconcepts,
)
from repro.eval.oracle import SimulatedUser
from repro.eval.protocol import (
    default_k,
    run_baseline_session,
    run_qd_session,
)
from repro.eval.reporting import format_series, format_table


class TestMetrics:
    def test_precision_perfect(self, rendered_db):
        query = get_query("rose")
        ids = rendered_db.ids_of_category("rose_red")[:10]
        assert precision_at(
            [int(i) for i in ids], rendered_db, query
        ) == 1.0

    def test_precision_zero(self, rendered_db):
        query = get_query("rose")
        ids = rendered_db.ids_of_category("bird_owl")[:10]
        assert precision_at(
            [int(i) for i in ids], rendered_db, query
        ) == 0.0

    def test_precision_empty_retrieved(self, rendered_db):
        assert precision_at([], rendered_db, get_query("rose")) == 0.0

    def test_precision_mixed(self, rendered_db):
        query = get_query("rose")
        good = [int(i) for i in rendered_db.ids_of_category("rose_red")[:5]]
        bad = [int(i) for i in rendered_db.ids_of_category("bird_owl")[:5]]
        assert precision_at(good + bad, rendered_db, query) == 0.5

    def test_recall(self, rendered_db):
        query = get_query("laptop")
        all_ids = [
            int(i)
            for i in rendered_db.ids_of_categories(
                sorted(query.relevant_categories())
            )
        ]
        assert recall_at(all_ids, rendered_db, query) == 1.0
        assert recall_at(all_ids[: len(all_ids) // 2],
                         rendered_db, query) == pytest.approx(
            (len(all_ids) // 2) / len(all_ids)
        )

    def test_precision_equals_recall_at_gt_size(self, rendered_db):
        """§5.2.1: retrieved count == ground truth size → P == R."""
        query = get_query("rose")
        k = default_k(rendered_db, query)
        red = [int(i) for i in rendered_db.ids_of_category("rose_red")]
        distractors = [
            i for i in range(rendered_db.size)
            if rendered_db.category_of(i) not in
            query.relevant_categories()
        ]
        ids = (red + distractors)[:k]
        assert len(ids) == k
        assert precision_at(ids, rendered_db, query) == pytest.approx(
            recall_at(ids, rendered_db, query)
        )

    def test_gtir_full(self, rendered_db):
        query = get_query("rose")
        ids = [int(rendered_db.ids_of_category("rose_red")[0]),
               int(rendered_db.ids_of_category("rose_yellow")[0])]
        assert gtir(ids, rendered_db, query) == 1.0

    def test_gtir_partial(self, rendered_db):
        query = get_query("bird")
        ids = [int(rendered_db.ids_of_category("bird_owl")[0])]
        assert gtir(ids, rendered_db, query) == pytest.approx(1 / 3)

    def test_gtir_grouped_subconcept(self, rendered_db):
        """Any sedan pose counts for the 'modern sedan' subconcept."""
        query = get_query("car")
        ids = [int(rendered_db.ids_of_category("sedan_back")[0])]
        assert gtir(ids, rendered_db, query) == pytest.approx(1 / 3)

    def test_gtir_min_hits(self, rendered_db):
        query = get_query("rose")
        ids = [int(rendered_db.ids_of_category("rose_red")[0])]
        assert gtir(ids, rendered_db, query, min_hits=2) == 0.0

    def test_gtir_invalid_min_hits(self, rendered_db):
        with pytest.raises(EvaluationError):
            gtir([], rendered_db, get_query("rose"), min_hits=0)

    def test_retrieved_subconcepts_names(self, rendered_db):
        query = get_query("bird")
        ids = [int(rendered_db.ids_of_category("bird_owl")[0]),
               int(rendered_db.ids_of_category("bird_eagle")[0])]
        assert retrieved_subconcepts(ids, rendered_db, query) == {
            "owl", "eagle",
        }


class TestSimulatedUser:
    def test_marks_exactly_relevant(self, rendered_db):
        query = get_query("rose")
        user = SimulatedUser(
            rendered_db, query, seed=0, max_marks_per_category=None
        )
        red = [int(i) for i in rendered_db.ids_of_category("rose_red")[:5]]
        owl = [int(i) for i in rendered_db.ids_of_category("bird_owl")[:5]]
        assert user.mark(red + owl) == red

    def test_category_cap_limits_marks(self, rendered_db):
        """Default user marks a handful per category per round."""
        query = get_query("rose")
        user = SimulatedUser(rendered_db, query, seed=0)
        red = [int(i) for i in rendered_db.ids_of_category("rose_red")]
        assert len(user.mark(red)) == 3

    def test_category_cap_resets_each_round(self, rendered_db):
        query = get_query("rose")
        user = SimulatedUser(rendered_db, query, seed=0)
        red = [int(i) for i in rendered_db.ids_of_category("rose_red")]
        first = user.mark(red[:10])
        second = user.mark(red[10:20])
        assert len(first) == 3 and len(second) == 3

    def test_invalid_cap_rejected(self, rendered_db):
        with pytest.raises(ValueError):
            SimulatedUser(
                rendered_db, get_query("rose"), max_marks_per_category=0
            )

    def test_miss_rate_drops_some(self, rendered_db):
        query = get_query("rose")
        user = SimulatedUser(
            rendered_db, query, seed=0, miss_rate=0.5,
            max_marks_per_category=None,
        )
        red = [int(i) for i in rendered_db.ids_of_category("rose_red")]
        marked = user.mark(red)
        assert 0 < len(marked) < len(red)

    def test_false_mark_rate_adds_some(self, rendered_db):
        query = get_query("rose")
        user = SimulatedUser(
            rendered_db, query, seed=0, false_mark_rate=0.5
        )
        owl = [int(i) for i in rendered_db.ids_of_category("bird_owl")]
        assert len(user.mark(owl)) > 0

    def test_invalid_rates_rejected(self, rendered_db):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            SimulatedUser(rendered_db, get_query("rose"), miss_rate=1.5)

    def test_pick_example_from_subconcept(self, rendered_db):
        query = get_query("bird")
        user = SimulatedUser(rendered_db, query, seed=0)
        ex = user.pick_example(subconcept_index=1)  # owl
        assert rendered_db.category_of(ex) == "bird_owl"

    def test_relevant_ids_matches_ground_truth(self, rendered_db):
        query = get_query("rose")
        user = SimulatedUser(rendered_db, query, seed=0)
        expected = set(
            int(i)
            for i in rendered_db.ids_of_categories(
                sorted(query.relevant_categories())
            )
        )
        assert user.relevant_ids() == expected

    def test_deterministic(self, rendered_db):
        query = get_query("rose")
        shown = [int(i) for i in
                 rendered_db.ids_of_category("rose_red")[:20]]
        a = SimulatedUser(rendered_db, query, seed=5, miss_rate=0.3)
        b = SimulatedUser(rendered_db, query, seed=5, miss_rate=0.3)
        assert a.mark(shown) == b.mark(shown)


class TestProtocols:
    def test_default_k_is_ground_truth_size(self, rendered_db):
        query = get_query("rose")
        assert default_k(rendered_db, query) == (
            rendered_db.ids_of_category("rose_red").shape[0]
            + rendered_db.ids_of_category("rose_yellow").shape[0]
        )

    def test_qd_session_records_per_round(self, engine):
        result, records = run_qd_session(
            engine, get_query("bird"), seed=1
        )
        assert len(records) == 3
        assert records[0].precision is None
        assert records[1].precision is None
        assert records[2].precision is not None
        assert [r.round for r in records] == [1, 2, 3]

    def test_qd_gtir_monotone_nondecreasing(self, engine):
        _, records = run_qd_session(engine, get_query("bird"), seed=2)
        gtirs = [r.gtir for r in records]
        assert all(a <= b + 1e-9 for a, b in zip(gtirs, gtirs[1:]))

    def test_qd_result_size(self, engine):
        query = get_query("rose")
        result, _ = run_qd_session(engine, query, k=30, seed=3)
        assert len(result.flatten(30)) == 30

    def test_baseline_session_records(self, rendered_db):
        technique = GlobalKNN(rendered_db, seed=0)
        records = run_baseline_session(
            technique, get_query("bird"), rounds=3, seed=0
        )
        assert len(records) == 3
        assert all(0.0 <= r.precision <= 1.0 for r in records)
        assert all(0.0 <= r.gtir <= 1.0 for r in records)

    def test_baseline_fixed_example_subconcept(self, rendered_db):
        technique = GlobalKNN(rendered_db, seed=0)
        records = run_baseline_session(
            technique, get_query("bird"), rounds=1, seed=0,
            example_subconcept=1,
        )
        assert records[0].gtir >= 1 / 3  # found at least its own cluster

    def test_qd_beats_mv_on_scattered_query(self, engine):
        """The paper's headline comparison at test scale."""
        query = get_query("bird")
        result, _ = run_qd_session(engine, query, seed=5)
        mv = MultipleViewpoints(engine.database, seed=5)
        mv_records = run_baseline_session(mv, query, rounds=3, seed=5)
        assert result.stats["gtir"] > mv_records[-1].gtir
        assert result.stats["precision"] > mv_records[-1].precision


class TestReporting:
    def test_format_table_alignment(self):
        out = format_table(
            ["name", "value"],
            [("alpha", 1.0), ("b", 0.5)],
            title="T",
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "alpha" in out and "0.500" in out
        # All data lines equal width.
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1

    def test_format_table_none_rendered_as_na(self):
        out = format_table(["a"], [(None,)])
        assert "n/a" in out

    def test_format_series(self):
        out = format_series("x", ["y"], [(1, 0.5), (2, 1.0)])
        assert "0.50000" in out
