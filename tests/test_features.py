"""Tests for the 37-d feature pipeline."""

import colorsys

import numpy as np
import pytest

from repro.config import FeatureConfig
from repro.errors import (
    ConfigurationError,
    FeatureExtractionError,
    InvalidImageError,
)
from repro.features.color import color_moments, rgb_to_hsv, validate_image
from repro.features.edges import (
    EDGE_FEATURE_DIMS,
    edge_map,
    edge_structural_features,
    sobel_gradients,
)
from repro.features.extractor import FeatureExtractor
from repro.features.normalize import FeatureNormalizer
from repro.features.texture import (
    haar_decompose,
    haar_dwt2,
    to_grayscale,
    wavelet_texture_features,
)


def _solid(color, size=16):
    img = np.empty((size, size, 3))
    img[:] = color
    return img


class TestValidateImage:
    def test_accepts_valid(self):
        validate_image(np.zeros((8, 8, 3)))

    def test_rejects_2d(self):
        with pytest.raises(InvalidImageError):
            validate_image(np.zeros((8, 8)))

    def test_rejects_wrong_channels(self):
        with pytest.raises(InvalidImageError):
            validate_image(np.zeros((8, 8, 4)))

    def test_rejects_tiny(self):
        with pytest.raises(InvalidImageError):
            validate_image(np.zeros((1, 8, 3)))

    def test_rejects_out_of_range(self):
        with pytest.raises(InvalidImageError):
            validate_image(np.full((8, 8, 3), 2.0))

    def test_rejects_nan(self):
        bad = np.zeros((8, 8, 3))
        bad[0, 0, 0] = np.nan
        with pytest.raises(InvalidImageError):
            validate_image(bad)


class TestRgbToHsv:
    @pytest.mark.parametrize(
        "rgb",
        [(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0),
         (0.5, 0.5, 0.5), (0.9, 0.4, 0.1), (0.0, 0.0, 0.0),
         (1.0, 1.0, 1.0), (0.2, 0.8, 0.6)],
    )
    def test_matches_colorsys(self, rgb):
        img = _solid(rgb, size=4)
        ours = rgb_to_hsv(img)[0, 0]
        ref = colorsys.rgb_to_hsv(*rgb)
        assert ours == pytest.approx(ref, abs=1e-9)

    def test_output_ranges(self, rng):
        img = rng.random((16, 16, 3))
        hsv = rgb_to_hsv(img)
        assert hsv[..., 0].min() >= 0 and hsv[..., 0].max() < 1.0
        assert hsv[..., 1].min() >= 0 and hsv[..., 1].max() <= 1.0
        assert hsv[..., 2].min() >= 0 and hsv[..., 2].max() <= 1.0


class TestColorMoments:
    def test_nine_dims(self):
        assert color_moments(_solid((0.3, 0.6, 0.9))).shape == (9,)

    def test_solid_image_zero_spread(self):
        feats = color_moments(_solid((0.3, 0.6, 0.9)))
        # std and skew of every channel vanish for a constant image.
        for idx in (1, 2, 4, 5, 7, 8):
            assert feats[idx] == pytest.approx(0.0, abs=1e-12)

    def test_value_mean_matches_brightness(self):
        feats = color_moments(_solid((0.25, 0.25, 0.25)))
        assert feats[6] == pytest.approx(0.25)

    def test_skew_sign(self):
        img = np.zeros((8, 8, 3))
        img[0, 0] = 1.0  # a single bright pixel → right-skewed V
        feats = color_moments(img)
        assert feats[8] > 0


class TestHaarWavelet:
    def test_constant_image_has_no_detail(self):
        ll, lh, hl, hh = haar_dwt2(np.full((8, 8), 0.7))
        assert np.allclose(lh, 0) and np.allclose(hl, 0)
        assert np.allclose(hh, 0)
        assert np.allclose(ll, 1.4)  # 0.7 * 2 (orthonormal scaling)

    def test_horizontal_stripes_land_in_lh(self):
        img = np.zeros((8, 8))
        img[0::2] = 1.0
        _, lh, hl, hh = haar_dwt2(img)
        assert np.abs(lh).sum() > 0
        assert np.allclose(hl, 0)

    def test_vertical_stripes_land_in_hl(self):
        img = np.zeros((8, 8))
        img[:, 0::2] = 1.0
        _, lh, hl, hh = haar_dwt2(img)
        assert np.abs(hl).sum() > 0
        assert np.allclose(lh, 0)

    def test_energy_preservation(self, rng):
        img = rng.random((16, 16))
        ll, lh, hl, hh = haar_dwt2(img)
        total = sum(np.sum(b**2) for b in (ll, lh, hl, hh))
        assert total == pytest.approx(np.sum(img**2))

    def test_odd_size_rejected(self):
        with pytest.raises(InvalidImageError):
            haar_dwt2(np.zeros((7, 8)))

    def test_1d_rejected(self):
        with pytest.raises(InvalidImageError):
            haar_dwt2(np.zeros(8))

    def test_decompose_levels(self, rng):
        img = rng.random((16, 16))
        ll, details = haar_decompose(img, 3)
        assert len(details) == 3
        assert ll.shape == (2, 2)
        assert details[0][0].shape == (8, 8)
        assert details[2][0].shape == (2, 2)

    def test_decompose_too_deep_rejected(self, rng):
        with pytest.raises(InvalidImageError):
            haar_decompose(rng.random((8, 8)), 4)

    def test_decompose_zero_levels_rejected(self, rng):
        with pytest.raises(InvalidImageError):
            haar_decompose(rng.random((8, 8)), 0)


class TestWaveletTextureFeatures:
    def test_ten_dims(self, rng):
        feats = wavelet_texture_features(rng.random((32, 32, 3)))
        assert feats.shape == (10,)

    def test_flat_image_all_zero(self):
        feats = wavelet_texture_features(_solid((0.5, 0.5, 0.5), 32))
        assert np.allclose(feats, 0.0)

    def test_textured_beats_flat(self, rng):
        flat = wavelet_texture_features(_solid((0.5, 0.5, 0.5), 32))
        noisy = wavelet_texture_features(
            np.clip(rng.random((32, 32, 3)), 0, 1)
        )
        assert noisy.sum() > flat.sum()

    def test_grayscale_weights(self):
        grey = to_grayscale(_solid((1.0, 0.0, 0.0), 4))
        assert grey[0, 0] == pytest.approx(0.299)


class TestEdgeFeatures:
    def test_eighteen_dims(self, rng):
        feats = edge_structural_features(rng.random((32, 32, 3)))
        assert feats.shape == (EDGE_FEATURE_DIMS,) == (18,)

    def test_flat_image_no_edges(self):
        feats = edge_structural_features(_solid((0.5, 0.5, 0.5), 32))
        assert np.allclose(feats, 0.0)

    def test_sobel_vertical_edge(self):
        img = np.zeros((8, 8))
        img[:, 4:] = 1.0
        gx, gy = sobel_gradients(img)
        assert np.abs(gx).max() > 0
        assert np.abs(gy).max() == pytest.approx(0.0)

    def test_sobel_horizontal_edge(self):
        img = np.zeros((8, 8))
        img[4:, :] = 1.0
        gx, gy = sobel_gradients(img)
        assert np.abs(gy).max() > 0
        assert np.abs(gx).max() == pytest.approx(0.0)

    def test_orientation_histogram_normalised(self, rng):
        feats = edge_structural_features(rng.random((32, 32, 3)))
        assert feats[:12].sum() == pytest.approx(1.0)

    def test_vertical_edge_orientation_bin(self):
        img = np.zeros((16, 16, 3))
        img[:, 8:, :] = 1.0
        feats = edge_structural_features(img)
        # A vertical edge has a horizontal gradient → orientation ~0 →
        # first histogram bin dominates.
        assert feats[0] == pytest.approx(1.0)

    def test_edge_density_in_unit_range(self, rng):
        feats = edge_structural_features(rng.random((32, 32, 3)))
        assert 0.0 <= feats[12] <= 1.0

    def test_connectivity_of_solid_edge(self):
        img = np.zeros((16, 16, 3))
        img[:, 8:, :] = 1.0
        feats = edge_structural_features(img)
        assert feats[15] == pytest.approx(1.0)  # contiguous edge line

    def test_edge_map_empty_for_flat(self):
        edges, mag, orient = edge_map(np.full((8, 8), 0.3))
        assert not edges.any()


class TestFeatureExtractor:
    def test_dims(self):
        assert FeatureExtractor().dims == 37

    def test_extract_shape_and_finite(self, rng):
        vec = FeatureExtractor().extract(rng.random((32, 32, 3)))
        assert vec.shape == (37,)
        assert np.isfinite(vec).all()

    def test_extract_batch(self, rng):
        batch = FeatureExtractor().extract_batch(
            [rng.random((32, 32, 3)) for _ in range(3)]
        )
        assert batch.shape == (3, 37)

    def test_extract_batch_empty(self):
        batch = FeatureExtractor().extract_batch([])
        assert batch.shape == (0, 37)

    def test_family_slices_cover_everything(self):
        ex = FeatureExtractor()
        slices = ex.family_slices()
        assert slices["color"] == slice(0, 9)
        assert slices["texture"] == slice(9, 19)
        assert slices["edges"] == slice(19, 37)

    def test_deterministic(self, rng):
        img = rng.random((32, 32, 3))
        ex = FeatureExtractor()
        assert np.array_equal(ex.extract(img), ex.extract(img))

    def test_mismatched_config_rejected(self):
        with pytest.raises(FeatureExtractionError):
            FeatureExtractor(FeatureConfig(texture_dims=12))

    def test_different_images_different_features(self, rng):
        ex = FeatureExtractor()
        a = ex.extract(_solid((1, 0, 0), 32))
        b = ex.extract(_solid((0, 0, 1), 32))
        assert not np.allclose(a, b)


class TestFeatureNormalizer:
    def test_fit_transform_zero_mean_unit_std(self, rng):
        data = rng.normal(3.0, 2.0, size=(200, 5))
        out = FeatureNormalizer().fit_transform(data)
        assert np.allclose(out.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(out.std(axis=0), 1.0, atol=1e-9)

    def test_constant_dimension_maps_to_zero(self):
        data = np.column_stack([np.arange(5.0), np.full(5, 7.0)])
        out = FeatureNormalizer().fit_transform(data)
        assert np.allclose(out[:, 1], 0.0)

    def test_transform_one(self, rng):
        data = rng.normal(size=(50, 3))
        norm = FeatureNormalizer().fit(data)
        single = norm.transform_one(data[0])
        batch = norm.transform(data[:1])[0]
        assert np.allclose(single, batch)

    def test_inverse_roundtrip(self, rng):
        data = rng.normal(2.0, 3.0, size=(50, 4))
        norm = FeatureNormalizer().fit(data)
        back = norm.inverse_transform(norm.transform(data))
        assert np.allclose(back, data)

    def test_use_before_fit_raises(self):
        with pytest.raises(ConfigurationError):
            FeatureNormalizer().transform(np.zeros((1, 3)))

    def test_fit_empty_raises(self):
        with pytest.raises(ConfigurationError):
            FeatureNormalizer().fit(np.zeros((0, 3)))

    def test_dim_mismatch_raises(self, rng):
        norm = FeatureNormalizer().fit(rng.normal(size=(10, 3)))
        with pytest.raises(ConfigurationError):
            norm.transform(rng.normal(size=(5, 4)))

    def test_is_fitted_flag(self, rng):
        norm = FeatureNormalizer()
        assert not norm.is_fitted
        norm.fit(rng.normal(size=(10, 2)))
        assert norm.is_fitted
