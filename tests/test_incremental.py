"""Tests for incremental RFS maintenance."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RFSConfig
from repro.errors import NodeNotFoundError, QueryError
from repro.index.incremental import IncrementalRFS
from repro.index.rfs import RFSStructure


def _fresh(n=200, d=8, seed=0):
    base = np.random.default_rng(seed).normal(size=(n, d))
    rfs = RFSStructure.build(
        base,
        RFSConfig(node_max_entries=40, node_min_entries=20,
                  leaf_subclusters=3),
        seed=seed,
    )
    return IncrementalRFS(rfs, seed=seed)


class TestInsert:
    def test_insert_returns_new_id_and_grows(self):
        inc = _fresh()
        new_id = inc.insert_image(np.zeros(8))
        assert new_id == 200
        assert inc.size == 201
        assert inc.features.shape == (201, 8)

    def test_inserted_image_findable(self):
        inc = _fresh()
        vec = np.full(8, 0.25)
        new_id = inc.insert_image(vec)
        leaf = inc.rfs.leaf_of_item(new_id)
        got = inc.rfs.localized_knn(leaf, vec, 1)
        assert got[0][1] == new_id

    def test_wrong_dims_rejected(self):
        inc = _fresh()
        with pytest.raises(QueryError):
            inc.insert_image(np.zeros(5))

    def test_many_inserts_keep_invariants(self):
        inc = _fresh()
        rng = np.random.default_rng(3)
        for _ in range(120):
            inc.insert_image(rng.normal(size=8))
        inc.validate()
        assert inc.size == 320

    def test_leaf_splits_on_overflow(self):
        inc = _fresh()
        rng = np.random.default_rng(4)
        # Hammer one region so a single leaf overflows.
        anchor = inc.features[0]
        before_leaves = sum(
            1 for n in inc.rfs.iter_nodes() if n.is_leaf
        )
        for _ in range(80):
            inc.insert_image(anchor + rng.normal(0, 0.01, size=8))
        after_leaves = sum(
            1 for n in inc.rfs.iter_nodes() if n.is_leaf
        )
        assert after_leaves > before_leaves
        for node in inc.rfs.iter_nodes():
            if node.is_leaf:
                assert node.size <= 40 + 1
        inc.validate()

    def test_inserts_route_to_nearby_cluster(self):
        inc = _fresh()
        target_leaf = inc.rfs.leaf_of_item(0)
        new_id = inc.insert_image(inc.features[0] + 1e-6)
        assert new_id in inc.rfs.leaf_of_item(new_id).item_ids
        assert inc.rfs.leaf_of_item(new_id).node_id in {
            target_leaf.node_id,
            *(n.node_id for n in inc.rfs.iter_nodes()),
        }


class TestRemove:
    def test_remove_detaches(self):
        inc = _fresh()
        inc.remove_image(5)
        assert inc.size == 199
        with pytest.raises(NodeNotFoundError):
            inc.rfs.leaf_of_item(5)
        inc.validate()

    def test_remove_unknown_raises(self):
        inc = _fresh()
        with pytest.raises(NodeNotFoundError):
            inc.remove_image(10**9)

    def test_remove_then_reinsert_cycle(self):
        inc = _fresh()
        vec = inc.features[7].copy()
        inc.remove_image(7)
        new_id = inc.insert_image(vec)
        leaf = inc.rfs.leaf_of_item(new_id)
        assert new_id in leaf.item_ids
        inc.validate()

    def test_emptying_a_leaf_prunes_it(self):
        inc = _fresh()
        leaf = inc.rfs.leaf_of_item(0)
        for image_id in list(leaf.item_ids):
            inc.remove_image(int(image_id))
        assert leaf.node_id not in inc.rfs.nodes
        inc.validate()


class TestLazyRefresh:
    def test_representatives_stay_members(self):
        inc = _fresh()
        rng = np.random.default_rng(6)
        for step in range(60):
            if step % 3 == 2 and inc.size > 50:
                victim = int(inc.rfs.root.item_ids[
                    rng.integers(inc.rfs.root.size)
                ])
                inc.remove_image(victim)
            else:
                inc.insert_image(rng.normal(size=8))
        inc.validate()  # includes the stale-representative check

    def test_queries_work_throughout(self):
        inc = _fresh()
        rng = np.random.default_rng(777)  # distinct from the base data
        for step in range(40):
            new_id = inc.insert_image(rng.normal(size=8))
            leaf = inc.rfs.leaf_of_item(new_id)
            got = inc.rfs.localized_knn(
                leaf, inc.features[new_id], 1
            )
            assert got[0][1] == new_id


class TestPropertyBased:
    @given(st.lists(st.integers(0, 2), min_size=5, max_size=40))
    @settings(max_examples=10, deadline=None)
    def test_random_operation_sequences(self, ops):
        inc = _fresh(n=120, seed=9)
        rng = np.random.default_rng(11)
        alive = set(range(120))
        for op in ops:
            if op in (0, 1) or len(alive) < 10:
                new_id = inc.insert_image(rng.normal(size=8))
                alive.add(new_id)
            else:
                victim = sorted(alive)[int(rng.integers(len(alive)))]
                inc.remove_image(victim)
                alive.discard(victim)
        inc.validate()
        assert inc.size == len(alive)
        assert set(inc.rfs.root.item_ids.tolist()) == alive
