"""Shared fixtures.

The heavier artefacts (rendered database, RFS structure, engine) are
session-scoped: they are deterministic in their seeds, and building them
once keeps the suite fast while letting many tests exercise realistic
state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import DatasetConfig, QDConfig, RFSConfig
from repro.core.engine import QueryDecompositionEngine
from repro.datasets.build import (
    build_rendered_database,
    build_synthetic_database,
)
from repro.index.rfs import RFSStructure

# Small-but-real scales: every named category exists, leaves hold a few
# dozen images, the tree has >= 2 levels.
SMALL_DB_IMAGES = 1200
SMALL_DB_CATEGORIES = 40
SMALL_RFS = RFSConfig(
    node_max_entries=60, node_min_entries=30, leaf_subclusters=4
)


@pytest.fixture(scope="session")
def rendered_db():
    """A 1,200-image rendered database with all named categories."""
    return build_rendered_database(
        DatasetConfig(
            total_images=SMALL_DB_IMAGES,
            n_categories=SMALL_DB_CATEGORIES,
            seed=123,
        )
    )


@pytest.fixture(scope="session")
def synthetic_db():
    """A 900-image Gaussian-mixture database (30 clusters)."""
    return build_synthetic_database(900, n_categories=30, seed=9)


@pytest.fixture(scope="session")
def rfs(rendered_db):
    """RFS structure over the rendered database."""
    return RFSStructure.build(rendered_db.features, SMALL_RFS, seed=77)


@pytest.fixture(scope="session")
def engine(rendered_db):
    """A ready-to-query QD engine over the rendered database."""
    return QueryDecompositionEngine.build(
        rendered_db, SMALL_RFS, QDConfig(), seed=77
    )


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0)
