#!/usr/bin/env python3
"""Video retrieval: the paper's §6 future-work extension, end to end.

Synthesises a small library of two-shot clips, runs the ingest pipeline
(shot-boundary detection → keyframe selection → feature indexing),
builds the RFS structure over the keyframes, and answers a "find clips
containing roses" query with a Query Decomposition feedback session —
finally aggregating keyframe hits back to clip ranks.

Run:  python examples/video_retrieval.py
"""

import numpy as np

from repro.video import (
    VideoDatabase,
    VideoSearchEngine,
    detect_shot_boundaries,
    render_clip,
)

CATEGORIES = [
    "bird_owl", "rose_red", "computer_desktop",
    "mountain_snow", "sport_sailing", "horse_polo",
]


def main() -> None:
    rng = np.random.default_rng(13)
    clips = []
    for i in range(16):
        first, second = rng.choice(CATEGORIES, size=2, replace=False)
        clips.append(
            render_clip(
                [(str(first), 8), (str(second), 8)], seed=200 + i
            )
        )
    print(f"rendered {len(clips)} clips "
          f"({sum(c.n_frames for c in clips)} frames total)")

    # Shot detection accuracy against the planted cuts.
    exact = sum(
        detect_shot_boundaries(clip.frames) == clip.shot_boundaries
        for clip in clips
    )
    print(f"shot detection: {exact}/{len(clips)} clips cut exactly")

    database = VideoDatabase.ingest(clips, seed=5)
    print(f"indexed {database.size} keyframes")

    engine = VideoSearchEngine(database, seed=6)
    target = "rose_red"
    truth = {
        cid
        for cid, clip in enumerate(clips)
        if target in clip.shot_categories
    }

    def mark(shown):
        # A user marking keyframes that show roses.
        return [i for i in shown if database.category_of(i) == target]

    ranked = engine.search(mark, k=10, seed=7)
    print(f"\nquery: clips containing '{target}' "
          f"({len(truth)} ground-truth clips)")
    print(f"{'rank':>4s} {'clip':>5s} {'score':>7s}  shots")
    hits = 0
    for rank, (clip_id, score) in enumerate(ranked[:6], start=1):
        shots = " + ".join(clips[clip_id].shot_categories)
        flag = "*" if clip_id in truth else " "
        hits += clip_id in truth
        print(f"{rank:4d} {clip_id:5d} {score:7.2f} {flag} {shots}")
    print(f"\n{hits} of the top {min(6, len(ranked))} ranked clips "
          "contain the target concept.")


if __name__ == "__main__":
    main()
