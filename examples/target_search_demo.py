#!/usr/bin/env python3
"""Target search: navigating to one specific image (reference [10]).

The paper's survey cites the authors' companion work on *target search*
— the user has one exact image in mind and the system must steer them to
it.  This demo shows the same RFS structure serving that paradigm too:
the simulated user repeatedly clicks the on-screen image closest to the
mental target, and the session contracts through the hierarchy.

Also prints a terminal preview of the found image, standing in for the
prototype's GUI thumbnails.

Run:  python examples/target_search_demo.py
"""

import numpy as np

from repro import (
    DatasetConfig,
    QueryDecompositionEngine,
    build_rendered_database,
)
from repro.core.target_search import run_target_search
from repro.imaging.preview import ascii_preview
from repro.imaging.scenes import render_scene


def main() -> None:
    database = build_rendered_database(
        DatasetConfig(total_images=3000, n_categories=60, seed=21)
    )
    engine = QueryDecompositionEngine.build(database, seed=21)
    rfs = engine.rfs

    rng = np.random.default_rng(9)
    print(f"database: {database.size} images, RFS height {rfs.height}\n")
    print(f"{'target':>7s} {'category':22s} {'found':>5s} "
          f"{'rounds':>6s} {'seen':>5s}")
    results = []
    for target in rng.integers(0, database.size, size=10):
        result = run_target_search(rfs, int(target), seed=int(target))
        results.append(result)
        print(
            f"{int(target):7d} "
            f"{database.category_of(int(target)):22s} "
            f"{'yes' if result.found else 'no':>5s} "
            f"{result.rounds:6d} {result.images_seen:5d}"
        )
    found = sum(r.found for r in results)
    seen = np.mean([r.images_seen for r in results])
    print(
        f"\nfound {found}/10 targets, inspecting on average "
        f"{seen:.0f} of {database.size} images "
        f"({seen / database.size:.1%})"
    )

    # Show what one recovered target looks like in the terminal.
    sample = next(r for r in results if r.found)
    category = database.category_of(sample.target_id)
    print(f"\ntarget {sample.target_id} ({category}), as the GUI would "
          "show it:")
    image = render_scene(category, 32, np.random.default_rng(0))
    print(ascii_preview(image, width=48))


if __name__ == "__main__":
    main()
