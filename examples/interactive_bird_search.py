#!/usr/bin/env python3
"""Step-by-step session: watch the query decompose round by round.

Reproduces the paper's running example (§3.2 / Figure 2): the user wants
"bird" images; the initial query at the RFS root splits into localized
subqueries — one per relevant subcluster (eagle / owl / sparrow) — and
the final round merges localized k-NN results from each.

Unlike quickstart.py this drives the :class:`FeedbackSession` manually,
showing what an interactive GUI (the prototype's ImageGrouper front end)
would do at each step.

Run:  python examples/interactive_bird_search.py
"""

from repro import (
    DatasetConfig,
    QueryDecompositionEngine,
    build_rendered_database,
    get_query,
)
from repro.eval import SimulatedUser


def main() -> None:
    database = build_rendered_database(
        DatasetConfig(total_images=3000, n_categories=60, seed=11)
    )
    engine = QueryDecompositionEngine.build(database, seed=11)
    query = get_query("bird")
    user = SimulatedUser(database, query, seed=3)

    session = engine.new_session(seed=3)
    print(f"Query: {query.description}")
    print(f"RFS structure: {engine.rfs.height} levels\n")

    for round_no in range(1, 4):
        shown = session.display(screens=4)
        marked = user.mark(shown)
        session.submit(marked)
        shown_cats = sorted(
            {database.category_of(i) for i in marked}
        )
        print(f"Round {round_no}:")
        print(f"  displayed {len(shown)} representative images")
        print(f"  user marked {len(marked)} as relevant "
              f"({', '.join(shown_cats) if shown_cats else 'none'})")
        print(f"  query now decomposed into {session.n_subqueries} "
              f"localized subquer{'y' if session.n_subqueries == 1 else 'ies'} "
              f"(RFS nodes {session.active_node_ids})\n")

    k = database.ground_truth_size(sorted(query.relevant_categories()))
    result = session.finalize(k)
    print("Final result (grouped presentation, best group first):")
    for rank, group in enumerate(result.groups, start=1):
        counts: dict[str, int] = {}
        for image_id in group.items.ids():
            cat = database.category_of(image_id)
            counts[cat] = counts.get(cat, 0) + 1
        top = ", ".join(
            f"{name} x{cnt}"
            for name, cnt in sorted(
                counts.items(), key=lambda kv: -kv[1]
            )[:3]
        )
        print(
            f"  group {rank}: {len(group)} images "
            f"(ranking score {group.ranking_score:.1f}) — {top}"
        )
    reads = engine.io.snapshot()
    print(f"\nSimulated I/O: {reads.get('reads[feedback]', 0)} page reads "
          f"for all feedback rounds, "
          f"{reads.get('reads[localized_knn]', 0)} for the final "
          "localized k-NN — no global k-NN was ever computed.")


if __name__ == "__main__":
    main()
