#!/usr/bin/env python3
"""Scalability study: query and feedback cost versus database size.

Reproduces the paper's Figures 10 and 11 at example scale: for a sweep
of database sizes, measure (a) the overall query processing time of a
full QD session and (b) the average per-iteration feedback time, and
contrast the latter with the cost of the global k-NN computation a
traditional relevance-feedback technique pays every round.

Also prints the simulated disk-page accounting of §5.2.2: feedback
touches one node per active subquery per round; each localized k-NN
usually reads a single leaf.

Run:  python examples/scalability_study.py
"""

from repro.eval.experiments import run_scalability


def main() -> None:
    result = run_scalability(
        db_sizes=(1_000, 2_000, 4_000, 8_000),
        n_queries=25,
    )
    print(result.format_figure10())
    print()
    print(result.format_figure11())
    # (The paper-scale sweep in benchmarks/bench_fig10_query_time.py
    # runs 100 queries per size and checks linearity; at this example
    # scale the trend is visible but noisy.)
    print("\nSimulated disk accounting (per query, averages):")
    print(f"{'db_size':>8s} {'feedback reads':>15s} "
          f"{'localized k-NN reads':>21s}")
    for point in result.points:
        print(
            f"{point.db_size:8d} {point.feedback_page_reads:15.1f} "
            f"{point.localized_knn_page_reads:21.1f}"
        )


if __name__ == "__main__":
    main()
