#!/usr/bin/env python3
"""Client/server deployment and user-defined feature importance.

Demonstrates the paper's two "beyond the prototype" capabilities:

1. **Client-side feedback (§6, "More Scalable")** — persist the RFS
   structure, measure the payload a client would download, and compare
   server load against a traditional relevance-feedback deployment.
2. **Feature-importance weighting (future work)** — re-run the same
   session's final retrieval with colour declared three times as
   important as texture/edges, and compare the result composition.

Run:  python examples/client_server_deployment.py
"""

import tempfile
from pathlib import Path

from repro import (
    DatasetConfig,
    QueryDecompositionEngine,
    build_rendered_database,
    get_query,
)
from repro.core.clientserver import compare_deployments
from repro.eval import SimulatedUser
from repro.index.serialize import load_rfs, save_rfs
from repro.retrieval.weighting import FamilyWeights


def main() -> None:
    database = build_rendered_database(
        DatasetConfig(total_images=4000, n_categories=80, seed=31)
    )
    engine = QueryDecompositionEngine.build(database, seed=31)

    # --- 1. ship the structure to a "client" --------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "rfs.npz"
        save_rfs(engine.rfs, path)
        print(f"RFS structure persisted: {path.stat().st_size / 1024:.0f} "
              "KiB on disk")
        client_rfs = load_rfs(path, database.features)
    client_engine = QueryDecompositionEngine(database, client_rfs)
    print(compare_deployments(client_engine.rfs).format())

    # --- 2. run feedback "on the client", retrieve with weights -------
    query = get_query("rose")
    user = SimulatedUser(database, query, seed=5)
    session = client_engine.new_session(seed=5)
    for screens in (6, 10, 1000):
        session.submit(user.mark(session.display(screens=screens)))

    k = 24
    # Can't finalize twice; replay the recorded marks for the variants.
    from repro.core.ranking import execute_final_round

    marks = session.marked_ids
    plain = execute_final_round(
        client_engine.rfs, marks, k, client_engine.config, rounds_used=3
    )
    color_heavy = execute_final_round(
        client_engine.rfs, marks, k, client_engine.config, rounds_used=3,
        dim_weights=FamilyWeights(color=3.0).as_vector(),
    )

    def composition(result) -> str:
        counts: dict[str, int] = {}
        for image_id in result.flatten(k):
            cat = database.category_of(image_id)
            counts[cat] = counts.get(cat, 0) + 1
        return ", ".join(
            f"{name} x{n}"
            for name, n in sorted(counts.items(), key=lambda kv: -kv[1])
        )

    print(f"\nquery '{query.description}', k={k}")
    print(f"  unweighted:    {composition(plain)}")
    print(f"  colour-heavy:  {composition(color_heavy)}")
    print(
        "\nWith colour weighted 3x, the retrieval sharpens around each "
        "rose colour cluster (the paper's user-defined feature "
        "importance extension)."
    )


if __name__ == "__main__":
    main()
