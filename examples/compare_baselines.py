#!/usr/bin/env python3
"""Compare Query Decomposition against all five baseline techniques.

Runs the scattered-subconcept query "computer" (server / desktop /
laptop) through plain k-NN, Query Point Movement, MARS multipoint,
Qcluster, and Multiple Viewpoints, then through QD, reporting precision
and GTIR for each — the paper's §5.2.1 comparison extended to the full
baseline family of its §2 survey.

Run:  python examples/compare_baselines.py
"""

from repro import (
    DatasetConfig,
    QueryDecompositionEngine,
    build_rendered_database,
    get_query,
)
from repro.baselines import ALL_BASELINES
from repro.eval import gtir, precision_at
from repro.eval.protocol import run_baseline_session, run_qd_session


def main() -> None:
    print("Building a 6,000-image / 100-category database ...")
    database = build_rendered_database(
        DatasetConfig(total_images=6000, n_categories=100, seed=19)
    )
    engine = QueryDecompositionEngine.build(database, seed=19)
    query = get_query("computer")
    k = database.ground_truth_size(sorted(query.relevant_categories()))
    print(f"Query: {query.description}   (k = ground truth size = {k})\n")

    print(f"{'technique':12s} {'precision':>9s} {'GTIR':>6s}")
    print("-" * 30)
    for technique_cls in ALL_BASELINES:
        technique = technique_cls(database, seed=5)
        records = run_baseline_session(
            technique, query, k=k, rounds=3, seed=5
        )
        final = records[-1]
        print(
            f"{technique.name:12s} {final.precision:9.2f} "
            f"{final.gtir:6.2f}"
        )

    result, _ = run_qd_session(engine, query, k=k, seed=5)
    ids = result.flatten(k)
    print(
        f"{'QD':12s} {precision_at(ids, database, query):9.2f} "
        f"{gtir(ids, database, query):6.2f}"
    )
    print(
        "\nThe k-NN-family baselines refine one neighbourhood and miss "
        "the scattered subconcepts (GTIR < 1); Query Decomposition "
        "retrieves from every relevant cluster."
    )


if __name__ == "__main__":
    main()
