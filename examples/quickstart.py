#!/usr/bin/env python3
"""Quickstart: build a database, run one Query Decomposition session.

Builds a small synthetic Corel-like database (procedural images through
the real 37-d feature pipeline), constructs the RFS structure, and runs a
3-round feedback session for the query "bird" driven by a simulated user.
The result arrives in groups — one per localized subquery — exactly like
the prototype's Figure 3 screen.

Run:  python examples/quickstart.py
"""

from repro import (
    DatasetConfig,
    QueryDecompositionEngine,
    build_rendered_database,
    get_query,
)
from repro.eval import SimulatedUser, gtir, precision_at


def main() -> None:
    print("Building a 3,000-image / 60-category database ...")
    database = build_rendered_database(
        DatasetConfig(total_images=3000, n_categories=60, seed=42)
    )
    print(f"  {database.size} images, {database.dims}-d features")

    print("Building the RFS structure ...")
    engine = QueryDecompositionEngine.build(database, seed=42)
    rfs = engine.rfs
    print(
        f"  {rfs.height} levels, "
        f"{sum(1 for _ in rfs.iter_nodes())} nodes, "
        f"{rfs.representative_fraction():.1%} of images are representatives"
    )

    query = get_query("bird")
    print(f"\nQuery: {query.description}")
    user = SimulatedUser(database, query, seed=7)

    # One call drives the whole session: 3 rounds of representative
    # displays + marks, then the final localized k-NN merge.
    k = database.ground_truth_size(sorted(query.relevant_categories()))
    result = engine.run_scripted(user.mark, k=k, seed=7)

    print(result.describe())
    ids = result.flatten(k)
    print(f"\nprecision = {precision_at(ids, database, query):.2f}")
    print(f"GTIR      = {gtir(ids, database, query):.2f} "
          f"({query.n_subconcepts} subconcepts in the ground truth)")
    for rank, group in enumerate(result.groups, start=1):
        cats = {}
        for image_id in group.items.ids()[:10]:
            cat = database.category_of(image_id)
            cats[cat] = cats.get(cat, 0) + 1
        print(f"  group {rank}: mostly {max(cats, key=cats.get)}")


if __name__ == "__main__":
    main()
